"""Go-With-The-Winners (paper Fig 6(a), refs [2][24]).

N annealing threads run in parallel; at each checkpoint the most
promising threads are cloned over the least promising ones ("launches
multiple optimization threads, and periodically identifies and clones
the most promising thread while terminating other threads").  The
control is :func:`independent_multistart` at the same total move
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.search.landscape import BisectionProblem


@dataclass
class _Thread:
    assign: np.ndarray
    cost: float
    temperature: float


@dataclass
class GWTWResult:
    """Outcome of a parallel search run."""

    best_cost: float
    best_assign: np.ndarray
    cost_trace: List[float] = field(default_factory=list)  # best-so-far per stage
    total_moves: int = 0
    method: str = "gwtw"


def _anneal_steps(
    problem: BisectionProblem,
    thread: _Thread,
    n_steps: int,
    rng: np.random.Generator,
    cooling: float,
) -> None:
    """Metropolis single-flip annealing, in place."""
    for _ in range(n_steps):
        node = int(rng.integers(0, problem.n_nodes))
        trial = thread.assign.copy()
        trial[node] = ~trial[node]
        if not problem.is_balanced(trial):
            continue
        delta = -problem.gain(thread.assign, node)  # cost change
        if delta <= 0 or rng.random() < np.exp(-delta / max(1e-9, thread.temperature)):
            thread.assign = trial
            thread.cost += delta
        thread.temperature *= cooling


def go_with_the_winners(
    problem: BisectionProblem,
    n_threads: int = 8,
    n_stages: int = 10,
    steps_per_stage: int = 60,
    survivor_fraction: float = 0.5,
    t_start: float = 3.0,
    seed: Optional[int] = None,
) -> GWTWResult:
    """GWTW annealing on a bisection landscape."""
    if n_threads < 2:
        raise ValueError("GWTW needs at least 2 threads")
    if not 0.0 < survivor_fraction < 1.0:
        raise ValueError("survivor_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    cooling = (0.02 / t_start) ** (1.0 / max(1, n_stages * steps_per_stage))
    threads = []
    for _ in range(n_threads):
        assign = problem.random_solution(rng)
        threads.append(_Thread(assign, problem.cost(assign), t_start))

    result = GWTWResult(best_cost=np.inf, best_assign=threads[0].assign, method="gwtw")
    for _ in range(n_stages):
        for thread in threads:
            _anneal_steps(problem, thread, steps_per_stage, rng, cooling)
            result.total_moves += steps_per_stage
        threads.sort(key=lambda t: t.cost)
        if threads[0].cost < result.best_cost:
            result.best_cost = threads[0].cost
            result.best_assign = threads[0].assign.copy()
        result.cost_trace.append(result.best_cost)
        # clone winners over losers
        n_survive = max(1, int(n_threads * survivor_fraction))
        for i in range(n_survive, n_threads):
            donor = threads[i % n_survive]
            threads[i] = _Thread(donor.assign.copy(), donor.cost, donor.temperature)
    # final polish of the champion
    polished = problem.local_search(result.best_assign, rng)
    cost = problem.cost(polished)
    if cost < result.best_cost:
        result.best_cost = cost
        result.best_assign = polished
    return result


def independent_multistart(
    problem: BisectionProblem,
    n_threads: int = 8,
    n_stages: int = 10,
    steps_per_stage: int = 60,
    t_start: float = 3.0,
    seed: Optional[int] = None,
) -> GWTWResult:
    """Same budget, no cloning: the baseline GWTW is measured against."""
    rng = np.random.default_rng(seed)
    cooling = (0.02 / t_start) ** (1.0 / max(1, n_stages * steps_per_stage))
    threads = []
    for _ in range(n_threads):
        assign = problem.random_solution(rng)
        threads.append(_Thread(assign, problem.cost(assign), t_start))
    result = GWTWResult(
        best_cost=np.inf, best_assign=threads[0].assign, method="multistart"
    )
    for _ in range(n_stages):
        for thread in threads:
            _anneal_steps(problem, thread, steps_per_stage, rng, cooling)
            result.total_moves += steps_per_stage
        best = min(threads, key=lambda t: t.cost)
        if best.cost < result.best_cost:
            result.best_cost = best.cost
            result.best_assign = best.assign.copy()
        result.cost_trace.append(result.best_cost)
    polished = problem.local_search(result.best_assign, rng)
    cost = problem.cost(polished)
    if cost < result.best_cost:
        result.best_cost = cost
        result.best_assign = polished
    return result
