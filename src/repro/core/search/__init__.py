"""Parallel search paradigms (paper Sec 2, Fig 6).

"Simple multistart, or depth-first or breadth-first traversal of the
tree of flow options, is hopeless.  Rather, strategies such as
go-with-the-winners (GWTW), which launches multiple optimization
threads, and periodically identifies and clones the most promising
thread while terminating other threads, might be applied.  Adaptive
multistart strategies, which exploit an inherent 'big valley' structure
in optimization cost landscapes ... are also of interest."

Both are implemented over a netlist-bisection landscape (the classic
domain of the paper's refs [5][12]) and over generic optimization
threads, so the orchestration layer can reuse them on flow
trajectories.
"""

from repro.core.search.landscape import BisectionProblem, big_valley_correlation
from repro.core.search.gwtw import GWTWResult, go_with_the_winners, independent_multistart
from repro.core.search.multistart import AdaptiveMultistart, MultistartResult

__all__ = [
    "BisectionProblem",
    "big_valley_correlation",
    "GWTWResult",
    "go_with_the_winners",
    "independent_multistart",
    "AdaptiveMultistart",
    "MultistartResult",
]
