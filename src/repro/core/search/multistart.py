"""Adaptive multistart (paper Fig 6(b), refs [5][12]).

"Better start points for optimization are identified based on the
structure of (locally-minimal) solutions found from previous start
points."  Concretely: run a batch of random-start local searches,
keep an elite pool of minima, and construct new starts by *consensus* —
nodes on which the elite agree keep their side, contested nodes are
randomized — then locally optimize those starts.  The big-valley
structure makes consensus starts land near the valley floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.search.landscape import BisectionProblem


def _local_search_job(problem: BisectionProblem, start: np.ndarray, seed: int) -> np.ndarray:
    """One local search under its own child rng (module-level so a
    process-pool executor can pickle it)."""
    return problem.local_search(start, np.random.default_rng(seed))


@dataclass
class MultistartResult:
    """Outcome of an (adaptive) multistart run."""

    best_cost: float
    best_assign: np.ndarray
    all_costs: List[float] = field(default_factory=list)
    n_local_searches: int = 0
    method: str = "adaptive"


class AdaptiveMultistart:
    """Boese-Kahng-Muddu-style adaptive multistart for bisection."""

    def __init__(
        self,
        n_initial: int = 12,
        n_adaptive_rounds: int = 4,
        starts_per_round: int = 4,
        elite_size: int = 5,
    ):
        if n_initial < 2:
            raise ValueError("need at least 2 initial starts")
        if elite_size < 2:
            raise ValueError("elite pool must hold at least 2 solutions")
        self.n_initial = n_initial
        self.n_adaptive_rounds = n_adaptive_rounds
        self.starts_per_round = starts_per_round
        self.elite_size = elite_size

    def run(
        self,
        problem: BisectionProblem,
        seed: Optional[int] = None,
        executor=None,
    ) -> MultistartResult:
        """With an ``executor`` (:class:`~repro.core.parallel.FlowExecutor`),
        each round's local-search batch fans across its workers; starts
        and per-search child seeds are drawn serially first, so results
        are identical at any worker count (but differ from the
        executor-less path, which threads one rng through every
        search).  Local searches go through ``executor.map`` — generic
        tasks with no content key — so neither the result cache nor the
        stage-prefix cache applies to them."""
        rng = np.random.default_rng(seed)
        pool: List[np.ndarray] = []
        costs: List[float] = []

        def add(minimum: np.ndarray) -> None:
            pool.append(minimum)
            costs.append(problem.cost(minimum))

        def run_batch(starts: List[np.ndarray]) -> None:
            tasks = [(problem, start, int(rng.integers(0, 2**31 - 1)))
                     for start in starts]
            for minimum in executor.map(_local_search_job, tasks):
                if isinstance(minimum, np.ndarray):
                    add(minimum)

        if executor is None:
            for _ in range(self.n_initial):
                add(problem.local_search(problem.random_solution(rng), rng))
        else:
            run_batch([problem.random_solution(rng) for _ in range(self.n_initial)])
        n_searches = self.n_initial

        for _ in range(self.n_adaptive_rounds):
            elite_idx = np.argsort(costs)[: self.elite_size]
            elite = [pool[i] for i in elite_idx]
            if executor is None:
                for _ in range(self.starts_per_round):
                    add(problem.local_search(
                        self._consensus_start(problem, elite, rng), rng))
            else:
                run_batch([self._consensus_start(problem, elite, rng)
                           for _ in range(self.starts_per_round)])
            n_searches += self.starts_per_round

        if not costs:
            raise RuntimeError("every local search failed to execute")
        best_idx = int(np.argmin(costs))
        return MultistartResult(
            best_cost=costs[best_idx],
            best_assign=pool[best_idx],
            all_costs=costs,
            n_local_searches=n_searches,
            method="adaptive",
        )

    def _consensus_start(
        self,
        problem: BisectionProblem,
        elite: List[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Agreeing nodes keep their side; contested nodes randomize."""
        # align all elite to the first (bisection has label symmetry)
        reference = elite[0]
        aligned = [reference]
        for sol in elite[1:]:
            flipped = ~sol
            if np.sum(sol != reference) <= np.sum(flipped != reference):
                aligned.append(sol)
            else:
                aligned.append(flipped)
        votes = np.mean(np.stack(aligned), axis=0)
        start = np.where(
            votes > 0.5 + 1e-9,
            True,
            np.where(votes < 0.5 - 1e-9, False, rng.random(problem.n_nodes) < 0.5),
        )
        start = self._rebalance(problem, start.astype(bool), rng)
        return start

    @staticmethod
    def _rebalance(
        problem: BisectionProblem, assign: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Flip random nodes of the larger side until balanced."""
        assign = assign.copy()
        half = problem.n_nodes // 2
        while not problem.is_balanced(assign):
            ones = int(np.sum(assign))
            side = ones > half
            candidates = np.nonzero(assign == side)[0]
            assign[rng.choice(candidates)] = not side
        return assign


def random_multistart(
    problem: BisectionProblem,
    n_starts: int,
    seed: Optional[int] = None,
    executor=None,
) -> MultistartResult:
    """Equal-budget baseline: every start is random.

    With an ``executor``, the whole batch of local searches fans across
    its workers under pre-drawn child seeds (deterministic at any
    worker count)."""
    if n_starts < 1:
        raise ValueError("need at least 1 start")
    rng = np.random.default_rng(seed)
    if executor is None:
        pool = [problem.local_search(problem.random_solution(rng), rng)
                for _ in range(n_starts)]
    else:
        tasks = []
        for _ in range(n_starts):
            start = problem.random_solution(rng)
            tasks.append((problem, start, int(rng.integers(0, 2**31 - 1))))
        pool = [m for m in executor.map(_local_search_job, tasks)
                if isinstance(m, np.ndarray)]
        if not pool:
            raise RuntimeError("every local search failed to execute")
    costs = [problem.cost(m) for m in pool]
    best_idx = int(np.argmin(costs))
    return MultistartResult(
        best_cost=costs[best_idx],
        best_assign=pool[best_idx],
        all_costs=costs,
        n_local_searches=n_starts,
        method="random",
    )
