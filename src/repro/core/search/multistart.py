"""Adaptive multistart (paper Fig 6(b), refs [5][12]).

"Better start points for optimization are identified based on the
structure of (locally-minimal) solutions found from previous start
points."  Concretely: run a batch of random-start local searches,
keep an elite pool of minima, and construct new starts by *consensus* —
nodes on which the elite agree keep their side, contested nodes are
randomized — then locally optimize those starts.  The big-valley
structure makes consensus starts land near the valley floor.

The search loops themselves now live in
:mod:`repro.dse.strategies.landscape` (strategies ``"multistart"`` and
``"random"``); the entrypoints here are bit-identical façades over the
declarative engine, kept for the historical call signatures and the
:class:`MultistartResult` dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.search.landscape import BisectionProblem


def _local_search_job(problem: BisectionProblem, start: np.ndarray, seed: int) -> np.ndarray:
    """One local search under its own child rng (module-level so a
    process-pool executor can pickle it).  Re-exported from the
    strategy module for pickling back-compat."""
    from repro.dse.strategies.landscape import _local_search_job as job

    return job(problem, start, seed)


@dataclass
class MultistartResult:
    """Outcome of an (adaptive) multistart run."""

    best_cost: float
    best_assign: np.ndarray
    all_costs: List[float] = field(default_factory=list)
    n_local_searches: int = 0
    method: str = "adaptive"


class AdaptiveMultistart:
    """Boese-Kahng-Muddu-style adaptive multistart for bisection."""

    def __init__(
        self,
        n_initial: int = 12,
        n_adaptive_rounds: int = 4,
        starts_per_round: int = 4,
        elite_size: int = 5,
    ):
        if n_initial < 2:
            raise ValueError("need at least 2 initial starts")
        if elite_size < 2:
            raise ValueError("elite pool must hold at least 2 solutions")
        self.n_initial = n_initial
        self.n_adaptive_rounds = n_adaptive_rounds
        self.starts_per_round = starts_per_round
        self.elite_size = elite_size

    def run(
        self,
        problem: BisectionProblem,
        seed: Optional[int] = None,
        executor=None,
    ) -> MultistartResult:
        """With an ``executor`` (:class:`~repro.core.parallel.FlowExecutor`),
        each round's local-search batch fans across its workers; starts
        and per-search child seeds are drawn serially first, so results
        are identical at any worker count (but differ from the
        executor-less path, which threads one rng through every
        search).  Local searches go through ``executor.map`` — generic
        tasks with no content key — so neither the result cache nor the
        stage-prefix cache applies to them."""
        from repro.dse.engine import DSEEngine

        engine = DSEEngine(
            strategy="multistart",
            executor=executor,
            params={
                "n_initial": self.n_initial,
                "n_adaptive_rounds": self.n_adaptive_rounds,
                "starts_per_round": self.starts_per_round,
                "elite_size": self.elite_size,
            },
        )
        return engine.run(problem, seed=seed).to_multistart_result()


def random_multistart(
    problem: BisectionProblem,
    n_starts: int,
    seed: Optional[int] = None,
    executor=None,
) -> MultistartResult:
    """Equal-budget baseline: every start is random.

    With an ``executor``, the whole batch of local searches fans across
    its workers under pre-drawn child seeds (deterministic at any
    worker count)."""
    from repro.dse.engine import DSEEngine

    engine = DSEEngine(
        strategy="random",
        executor=executor,
        params={"n_starts": n_starts},
    )
    return engine.run(problem, seed=seed).to_multistart_result()
