"""Design profiles for the paper's testcases and driver classes.

The paper's experiments run on a PULPino RISC-V core in foundry 14nm
(Figs 3, 7), floorplans of an embedded CPU (the doomed-run test set)
and artificial layouts (the doomed-run training set).  These profiles
produce :class:`~repro.eda.synthesis.DesignSpec` objects whose flow
behaviour matches the role each design plays: the PULPino profile's
maximum achievable frequency sits near 0.78 GHz-equivalent so the
paper's 0.38-0.78 GHz target sweep brackets its feasibility wall.

The paper's conclusion (Q2) also calls for distinct "design driver
classes (RF, GPU, CPU, DSP, NOC, PHY)" against which progress is
measured; :data:`DRIVER_CLASSES` provides one profile per class.
"""

from __future__ import annotations

from typing import Dict

from repro.eda.synthesis import DesignSpec


def pulpino_profile(scale: float = 1.0) -> DesignSpec:
    """A PULPino-class RISC-V microcontroller core.

    ``scale`` multiplies gate and flop counts (1.0 keeps flow runs under
    ~2 s so the paper's 200-run MAB experiment stays laptop-sized).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return DesignSpec(
        name="pulpino",
        n_gates=int(600 * scale),
        n_flops=max(8, int(64 * scale)),
        n_inputs=24,
        n_outputs=24,
        depth=30,
        locality=0.90,
    )


def embedded_cpu_profile(scale: float = 1.0) -> DesignSpec:
    """The embedded CPU whose floorplans form the doomed-run test set."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return DesignSpec(
        name="embedded_cpu",
        n_gates=int(900 * scale),
        n_flops=max(8, int(96 * scale)),
        n_inputs=32,
        n_outputs=32,
        depth=34,
        locality=0.88,
    )


def artificial_profile(index: int = 0) -> DesignSpec:
    """An "artificial layout": regular, shallow, datapath-like logic.

    These play the role of the 1200 synthetic training layouts in the
    paper's doomed-run table — structurally unlike the CPU test set.
    ``index`` varies size and shape deterministically.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    sizes = (300, 400, 500, 600)
    depths = (8, 10, 12)
    return DesignSpec(
        name=f"artificial_{index}",
        n_gates=sizes[index % len(sizes)],
        n_flops=32 + 8 * (index % 5),
        n_inputs=16,
        n_outputs=16,
        depth=depths[index % len(depths)],
        locality=0.6,
        function_mix={  # datapath-heavy mix
            "INV": 0.10,
            "NAND2": 0.20,
            "NOR2": 0.10,
            "AND2": 0.12,
            "OR2": 0.08,
            "XOR2": 0.22,
            "AOI21": 0.06,
            "OAI21": 0.06,
            "MUX2": 0.06,
        },
    )


def _dsp_profile() -> DesignSpec:
    return DesignSpec(
        name="dsp", n_gates=700, n_flops=96, n_inputs=32, n_outputs=32,
        depth=22, locality=0.8,
        function_mix={
            "INV": 0.08, "NAND2": 0.16, "NOR2": 0.08, "AND2": 0.12,
            "OR2": 0.08, "XOR2": 0.28, "AOI21": 0.08, "OAI21": 0.06,
            "MUX2": 0.06,
        },
    )


def _noc_profile() -> DesignSpec:
    return DesignSpec(
        name="noc", n_gates=500, n_flops=128, n_inputs=64, n_outputs=64,
        depth=12, locality=0.65,
        function_mix={
            "INV": 0.10, "NAND2": 0.18, "NOR2": 0.10, "AND2": 0.10,
            "OR2": 0.08, "XOR2": 0.06, "AOI21": 0.10, "OAI21": 0.08,
            "MUX2": 0.20,
        },
    )


def _gpu_profile() -> DesignSpec:
    return DesignSpec(
        name="gpu_shader", n_gates=1000, n_flops=128, n_inputs=48,
        n_outputs=48, depth=26, locality=0.85,
    )


def _phy_profile() -> DesignSpec:
    return DesignSpec(
        name="phy", n_gates=350, n_flops=80, n_inputs=24, n_outputs=24,
        depth=10, locality=0.6,
    )


#: One representative profile per paper-suggested driver class.
DRIVER_CLASSES: Dict[str, DesignSpec] = {
    "CPU": embedded_cpu_profile(),
    "MCU": pulpino_profile(),
    "DSP": _dsp_profile(),
    "NOC": _noc_profile(),
    "GPU": _gpu_profile(),
    "PHY": _phy_profile(),
}


def design_profile(name: str) -> DesignSpec:
    """Look up a profile by design or driver-class name."""
    by_name = {spec.name: spec for spec in DRIVER_CLASSES.values()}
    if name in DRIVER_CLASSES:
        return DRIVER_CLASSES[name]
    if name in by_name:
        return by_name[name]
    raise KeyError(
        f"unknown profile {name!r}; available: "
        f"{sorted(DRIVER_CLASSES) + sorted(by_name)}"
    )
