"""Detailed-router logfile corpora for the doomed-run experiments.

The paper's Sec 3.3 table trains its MDP policy on 1200 logfiles from
*artificial layouts* and tests on 3742 logfiles from *floorplans of an
embedded CPU* — a deliberate domain shift.  This module reproduces both
corpora against our substrate:

- **artificial** — congestion maps with uniform base demand and mild
  texture (what regular, synthetic layouts look like to a router);
- **cpu** — congestion maps taken from real global-route results of the
  embedded-CPU profile (placed and routed at several utilizations and
  seeds), perturbed by a routing-supply factor and a macro hotspot.

Every logfile is a genuine run of :class:`~repro.eda.routing.DetailedRouter`
on such a map; the DRV-per-iteration series and the success label
(final DRVs < 200, per the paper) come from the simulator, not from
sampled curves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.eda.routing import (
    SUCCESS_DRV_THRESHOLD,
    DetailedRouter,
    GlobalRouter,
)


@dataclass
class RouterLog:
    """One detailed-routing logfile: a DRV time series plus ground truth."""

    drvs: List[int]
    success: bool
    domain: str
    difficulty: float  # routing demand scale used to create the run

    @property
    def final_drvs(self) -> int:
        return self.drvs[-1]

    @property
    def n_iterations(self) -> int:
        return len(self.drvs) - 1


class RouterLogCorpus:
    """A labeled set of router logfiles from one domain."""

    def __init__(self, logs: List[RouterLog], domain: str):
        if not logs:
            raise ValueError("corpus must contain at least one log")
        self.logs = logs
        self.domain = domain

    def __len__(self) -> int:
        return len(self.logs)

    def __iter__(self):
        return iter(self.logs)

    @property
    def success_rate(self) -> float:
        return sum(log.success for log in self.logs) / len(self.logs)

    # ------------------------------------------------------------------
    @classmethod
    def artificial(
        cls,
        n: int = 1200,
        seed: int = 0,
        max_iterations: int = 20,
        grid: int = 16,
    ) -> "RouterLogCorpus":
        """Training corpus: artificial (uniform-texture) layouts."""
        rng = np.random.default_rng(seed)
        router = DetailedRouter(max_iterations=max_iterations)
        logs = []
        for _ in range(n):
            base = rng.uniform(0.55, 1.30)
            texture = rng.normal(0.0, 0.08, size=(grid, grid))
            cong = np.clip(base + texture, 0.0, None)
            result = router.route(cong, seed=int(rng.integers(0, 2**31 - 1)))
            logs.append(
                RouterLog(
                    drvs=result.drvs_per_iteration,
                    success=result.final_drvs < SUCCESS_DRV_THRESHOLD,
                    domain="artificial",
                    difficulty=float(base),
                )
            )
        return cls(logs, "artificial")

    @classmethod
    def cpu_floorplans(
        cls,
        n: int = 3742,
        seed: int = 0,
        max_iterations: int = 20,
        n_base_maps: int = 6,
    ) -> "RouterLogCorpus":
        """Testing corpus: floorplans of the embedded CPU profile."""
        rng = np.random.default_rng(seed)
        bases = _cpu_base_maps(n_base_maps, seed=seed)
        router = DetailedRouter(max_iterations=max_iterations)
        logs = []
        for _ in range(n):
            base = bases[int(rng.integers(0, len(bases)))]
            supply = rng.uniform(0.62, 1.40)
            cong = base / supply
            # a macro blocks routing resources somewhere on the die
            cong = _add_hotspot(cong, rng, strength=rng.uniform(0.0, 0.5))
            result = router.route(cong, seed=int(rng.integers(0, 2**31 - 1)))
            logs.append(
                RouterLog(
                    drvs=result.drvs_per_iteration,
                    success=result.final_drvs < SUCCESS_DRV_THRESHOLD,
                    domain="cpu",
                    difficulty=float(1.0 / supply),
                )
            )
        return cls(logs, "cpu")


# Base-map construction costs several seconds of synth + place + groute
# per (n_maps, seed) point, so the maps are memoized for the life of the
# process.  The value is deterministic in the key, so concurrent callers
# computing it twice would agree — the lock exists so a reader never
# observes the dict mid-resize and duplicate work is bounded.
_CPU_MAP_CACHE = {}
_CPU_MAP_LOCK = threading.Lock()


def _cpu_base_maps(n_maps: int, seed: int = 0) -> List[np.ndarray]:
    """Real congestion maps: place + global-route the CPU profile."""
    key = (n_maps, seed)
    with _CPU_MAP_LOCK:
        if key in _CPU_MAP_CACHE:
            return _CPU_MAP_CACHE[key]
    from repro.bench.generators import embedded_cpu_profile
    from repro.eda.floorplan import make_floorplan
    from repro.eda.library import make_default_library
    from repro.eda.placement import QuadraticPlacer
    from repro.eda.synthesis import synthesize

    rng = np.random.default_rng(seed)
    library = make_default_library()
    spec = embedded_cpu_profile(scale=0.5)
    maps = []
    utilizations = np.linspace(0.6, 0.88, n_maps)
    for util in utilizations:
        netlist = synthesize(spec, library, effort=0.5, seed=int(rng.integers(0, 2**31 - 1)))
        floorplan = make_floorplan(netlist, utilization=float(util))
        placement = QuadraticPlacer().place(netlist, floorplan, int(rng.integers(0, 2**31 - 1)))
        groute = GlobalRouter().route(placement, int(rng.integers(0, 2**31 - 1)))
        maps.append(groute.congestion_map())
    with _CPU_MAP_LOCK:
        return _CPU_MAP_CACHE.setdefault(key, maps)


def _add_hotspot(
    cong: np.ndarray, rng: np.random.Generator, strength: float
) -> np.ndarray:
    """Overlay a rectangular high-demand region (a macro shadow)."""
    if strength <= 0:
        return cong
    out = cong.copy()
    ny, nx = out.shape
    h = int(rng.integers(2, max(3, ny // 3)))
    w = int(rng.integers(2, max(3, nx // 3)))
    j0 = int(rng.integers(0, ny - h))
    i0 = int(rng.integers(0, nx - w))
    out[j0 : j0 + h, i0 : i0 + w] += strength
    return out
