"""Workload and corpus generators.

Profiles for the designs the paper's experiments use (a PULPino-class
RISC-V core, an embedded CPU, artificial layouts), detailed-router
logfile corpora with the paper's train/test domain shift, and
"eyechart" gate-sizing benchmarks with known optimal solutions
(paper refs [11], [23]).
"""

from repro.bench.generators import (
    DRIVER_CLASSES,
    artificial_profile,
    design_profile,
    embedded_cpu_profile,
    pulpino_profile,
)
from repro.bench.corpus import RouterLogCorpus, RouterLog
from repro.bench.eyecharts import Eyechart, VtEyechart, greedy_vt_assignment, make_eyechart, make_vt_eyechart

__all__ = [
    "DRIVER_CLASSES",
    "design_profile",
    "pulpino_profile",
    "embedded_cpu_profile",
    "artificial_profile",
    "RouterLogCorpus",
    "RouterLog",
    "Eyechart",
    "make_eyechart",
    "VtEyechart",
    "make_vt_eyechart",
    "greedy_vt_assignment",
]
