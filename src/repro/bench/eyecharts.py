"""Eyecharts: gate-sizing benchmarks with known optimal solutions.

The paper (Sec 3.3, refs [11] and [23]) calls for synthetic design
proxies — "eye charts" — whose optimum is known by construction, so
tools and heuristics can be *characterized* rather than just compared
to each other.  This module builds inverter/NAND chain topologies and
computes their exact delay-optimal discrete sizing by dynamic
programming (exact for chains, which is what makes the benchmark's
optimum "known").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eda.library import StdCellLibrary, make_default_library
from repro.eda.netlist import Netlist


@dataclass
class Eyechart:
    """A sizing benchmark: a chain netlist plus its known optimum."""

    netlist: Netlist
    stage_functions: List[str]
    side_loads: List[float]  # extra fF hung on each internal net
    output_load: float
    optimal_drives: Tuple[int, ...]
    optimal_delay: float

    @property
    def n_stages(self) -> int:
        return len(self.stage_functions)

    def delay_of(self, drives: Tuple[int, ...], library: StdCellLibrary) -> float:
        """Chain delay for an arbitrary sizing assignment."""
        if len(drives) != self.n_stages:
            raise ValueError("one drive per stage required")
        return _chain_delay(
            self.stage_functions, drives, self.side_loads, self.output_load, library
        )

    def quality_of(self, drives: Tuple[int, ...], library: StdCellLibrary) -> float:
        """Suboptimality ratio (1.0 = optimal; larger = worse)."""
        return self.delay_of(drives, library) / self.optimal_delay


def make_eyechart(
    n_stages: int = 8,
    output_load: float = 40.0,
    seed: Optional[int] = None,
    library: Optional[StdCellLibrary] = None,
) -> Eyechart:
    """Build a chain eyechart and solve it exactly.

    Stage functions alternate INV/NAND2/NOR2 (seeded choice); side loads
    model fanout stubs; the first stage is pinned at drive X1 (a weak
    source), making the optimum a nontrivial taper.  The optimum over
    the library's discrete drive strengths is found by exhaustive DP
    over (stage, drive) states.
    """
    if n_stages < 2:
        raise ValueError("need at least 2 stages")
    if output_load <= 0:
        raise ValueError("output_load must be positive")
    library = library or make_default_library()
    rng = np.random.default_rng(seed)
    functions = [("INV", "NAND2", "NOR2")[int(rng.integers(0, 3))] for _ in range(n_stages)]
    side_loads = [float(rng.uniform(0.0, 4.0)) for _ in range(n_stages - 1)] + [0.0]

    optimal_drives, optimal_delay = _solve_chain(
        functions, side_loads, output_load, library
    )
    netlist = _build_chain_netlist(functions, optimal_drives, library)
    return Eyechart(
        netlist=netlist,
        stage_functions=functions,
        side_loads=side_loads,
        output_load=output_load,
        optimal_drives=optimal_drives,
        optimal_delay=optimal_delay,
    )


def _drive_options(library: StdCellLibrary, function: str) -> List[int]:
    return sorted({c.drive for c in library.variants(function) if c.vt == "SVT"})


def _chain_delay(functions, drives, side_loads, output_load, library) -> float:
    total = 0.0
    for i, (function, drive) in enumerate(zip(functions, drives)):
        cell = library.pick(function, drive)
        if i + 1 < len(functions):
            next_cell = library.pick(functions[i + 1], drives[i + 1])
            load = next_cell.input_cap + side_loads[i]
        else:
            load = output_load
        total += cell.delay(load, input_slew=10.0)
    return total


def _solve_chain(functions, side_loads, output_load, library):
    """Exact min-delay sizing by backward DP over stages.

    State: the drive of the current stage (which fixes the load seen by
    the previous stage).  Because the chain delay decomposes per stage
    given adjacent drives, DP is exact.
    """
    n = len(functions)
    options = [_drive_options(library, f) for f in functions]
    # the chain is driven by a weak source: the first stage is pinned at
    # X1 (otherwise max-drive-everywhere is trivially optimal)
    options[0] = [1]
    # best[i][d] = min delay of stages i..n-1 given stage i uses drive d
    best = [dict() for _ in range(n)]
    choice = [dict() for _ in range(n)]
    for d in options[-1]:
        cell = library.pick(functions[-1], d)
        best[-1][d] = cell.delay(output_load, input_slew=10.0)
    for i in range(n - 2, -1, -1):
        for d in options[i]:
            cell = library.pick(functions[i], d)
            candidates = []
            for d_next in options[i + 1]:
                next_cell = library.pick(functions[i + 1], d_next)
                load = next_cell.input_cap + side_loads[i]
                candidates.append(
                    (cell.delay(load, input_slew=10.0) + best[i + 1][d_next], d_next)
                )
            value, d_next = min(candidates)
            best[i][d] = value
            choice[i][d] = d_next
    first = min(best[0], key=lambda d: best[0][d])
    drives = [first]
    for i in range(n - 1):
        drives.append(choice[i][drives[-1]])
    return tuple(drives), best[0][first]


@dataclass
class VtEyechart:
    """A VT-assignment benchmark with known optimal leakage.

    Drives are fixed, so each stage's delay and leakage depend only on
    its own VT class — the optimum under a total-delay budget is exact
    (found by exhaustive enumeration, feasible for chain lengths <= 12).
    Mirrors the power-recovery step of real flows: swap cells to higher
    VT wherever the timing budget allows.
    """

    stage_functions: List[str]
    stage_drives: Tuple[int, ...]
    stage_delays: Dict[str, List[float]]  # vt -> per-stage delay
    stage_leakage: Dict[str, List[float]]  # vt -> per-stage leakage
    delay_budget: float
    optimal_vts: Tuple[str, ...]
    optimal_leakage: float

    @property
    def n_stages(self) -> int:
        return len(self.stage_functions)

    def delay_of(self, vts: Sequence[str]) -> float:
        self._check(vts)
        return sum(self.stage_delays[vt][i] for i, vt in enumerate(vts))

    def leakage_of(self, vts: Sequence[str]) -> float:
        self._check(vts)
        return sum(self.stage_leakage[vt][i] for i, vt in enumerate(vts))

    def is_feasible(self, vts: Sequence[str]) -> bool:
        return self.delay_of(vts) <= self.delay_budget + 1e-9

    def quality_of(self, vts: Sequence[str]) -> float:
        """Leakage over optimal leakage; infeasible assignments -> inf."""
        if not self.is_feasible(vts):
            return float("inf")
        return self.leakage_of(vts) / self.optimal_leakage

    def _check(self, vts: Sequence[str]) -> None:
        if len(vts) != self.n_stages:
            raise ValueError("one VT class per stage required")
        for vt in vts:
            if vt not in self.stage_delays:
                raise ValueError(f"unknown VT class {vt!r}")


def make_vt_eyechart(
    n_stages: int = 8,
    slack_fraction: float = 0.15,
    seed: Optional[int] = None,
    library: Optional[StdCellLibrary] = None,
) -> VtEyechart:
    """Build a VT-assignment eyechart and solve it exactly.

    The delay budget is ``(1 + slack_fraction)`` times the all-LVT
    (fastest) chain delay: tight enough that all-HVT is infeasible,
    loose enough that some stages can relax — a nontrivial assignment.
    """
    if not 2 <= n_stages <= 12:
        raise ValueError("n_stages must be in [2, 12] (exact solve)")
    if slack_fraction <= 0:
        raise ValueError("slack_fraction must be positive")
    library = library or make_default_library()
    rng = np.random.default_rng(seed)
    functions = [("INV", "NAND2", "NOR2")[int(rng.integers(0, 3))] for _ in range(n_stages)]
    drives = tuple(int(rng.choice((1, 2, 4))) for _ in range(n_stages))
    loads = [float(rng.uniform(2.0, 12.0)) for _ in range(n_stages)]

    vt_classes = ("LVT", "SVT", "HVT")
    stage_delays = {vt: [] for vt in vt_classes}
    stage_leakage = {vt: [] for vt in vt_classes}
    for i, (function, drive) in enumerate(zip(functions, drives)):
        for vt in vt_classes:
            cell = library.pick(function, drive, vt)
            stage_delays[vt].append(cell.delay(loads[i], input_slew=10.0))
            stage_leakage[vt].append(cell.leakage)

    fastest = sum(stage_delays["LVT"])
    budget = fastest * (1.0 + slack_fraction)

    best_vts = None
    best_leak = float("inf")
    for combo in product(vt_classes, repeat=n_stages):
        delay = sum(stage_delays[vt][i] for i, vt in enumerate(combo))
        if delay > budget + 1e-12:
            continue
        leak = sum(stage_leakage[vt][i] for i, vt in enumerate(combo))
        if leak < best_leak:
            best_leak = leak
            best_vts = combo
    return VtEyechart(
        stage_functions=functions,
        stage_drives=drives,
        stage_delays=stage_delays,
        stage_leakage=stage_leakage,
        delay_budget=budget,
        optimal_vts=best_vts,
        optimal_leakage=best_leak,
    )


def greedy_vt_assignment(chart: VtEyechart) -> Tuple[str, ...]:
    """The power-recovery heuristic: start all-LVT (fastest), repeatedly
    take the relaxation with the best leakage-saved / delay-cost ratio
    that still fits the budget."""
    order = ("LVT", "SVT", "HVT")
    vts = ["LVT"] * chart.n_stages
    delay = chart.delay_of(vts)
    while True:
        best = None
        for i, vt in enumerate(vts):
            idx = order.index(vt)
            if idx + 1 >= len(order):
                continue
            nxt = order[idx + 1]
            d_cost = chart.stage_delays[nxt][i] - chart.stage_delays[vt][i]
            leak_gain = chart.stage_leakage[vt][i] - chart.stage_leakage[nxt][i]
            if delay + d_cost > chart.delay_budget + 1e-9 or leak_gain <= 0:
                continue
            ratio = leak_gain / max(1e-12, d_cost)
            if best is None or ratio > best[0]:
                best = (ratio, i, nxt, d_cost)
        if best is None:
            return tuple(vts)
        _, i, nxt, d_cost = best
        vts[i] = nxt
        delay += d_cost


def _build_chain_netlist(functions, drives, library) -> Netlist:
    netlist = Netlist("eyechart", library)
    netlist.add_primary_input("in0")
    clk = netlist.add_primary_input("clk")
    netlist.set_clock(clk.name)
    prev = "in0"
    for i, (function, drive) in enumerate(zip(functions, drives)):
        cell = library.pick(function, drive)
        inputs = [prev] * cell.n_inputs
        inst = netlist.add_instance(f"s{i}", cell, inputs)
        prev = inst.output_net
    netlist.mark_primary_output(prev)
    netlist.validate()
    return netlist
