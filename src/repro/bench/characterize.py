"""Tool characterization with eyecharts (paper refs [11][23]).

Eyecharts exist so heuristics can be graded against a *known optimum*
instead of against each other.  This module grades gate-sizing
heuristics on chain eyecharts: each sizer proposes drive strengths, and
its quality is delay / optimal-delay (1.0 = perfect), aggregated over a
seeded benchmark suite — "constructive benchmarking of gate sizing
heuristics".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.eyecharts import Eyechart, make_eyechart
from repro.eda.library import DRIVE_STRENGTHS, StdCellLibrary, make_default_library

#: a sizer maps (eyechart, library, rng) -> drive tuple
Sizer = Callable[[Eyechart, StdCellLibrary, np.random.Generator], Tuple[int, ...]]


def optimal_sizer(chart: Eyechart, library: StdCellLibrary, rng) -> Tuple[int, ...]:
    """The DP reference (quality exactly 1.0)."""
    return chart.optimal_drives


def naive_sizer(chart: Eyechart, library: StdCellLibrary, rng) -> Tuple[int, ...]:
    """Everything at minimum drive — the unsized baseline."""
    return tuple([1] * chart.n_stages)


def greedy_sizer(chart: Eyechart, library: StdCellLibrary, rng) -> Tuple[int, ...]:
    """Local moves: repeatedly apply the single resize that helps most.

    This mimics what sizing heuristics inside P&R tools do; eyecharts
    exist precisely to measure how far such greed lands from optimal.
    """
    drives = [1] * chart.n_stages
    current = chart.delay_of(tuple(drives), library)
    while True:
        best_move = None
        for stage in range(1, chart.n_stages):  # stage 0 is pinned
            for drive in DRIVE_STRENGTHS:
                if drive == drives[stage]:
                    continue
                trial = list(drives)
                trial[stage] = drive
                delay = chart.delay_of(tuple(trial), library)
                if delay < current - 1e-12:
                    current = delay
                    best_move = (stage, drive)
        if best_move is None:
            return tuple(drives)
        drives[best_move[0]] = best_move[1]


def random_sizer(chart: Eyechart, library: StdCellLibrary, rng) -> Tuple[int, ...]:
    """Best of 20 random assignments — the trial-and-error engineer."""
    best = None
    best_delay = np.inf
    for _ in range(20):
        drives = tuple(
            [1] + [int(rng.choice(DRIVE_STRENGTHS)) for _ in range(chart.n_stages - 1)]
        )
        delay = chart.delay_of(drives, library)
        if delay < best_delay:
            best_delay = delay
            best = drives
    return best


BUILTIN_SIZERS: Dict[str, Sizer] = {
    "optimal": optimal_sizer,
    "greedy": greedy_sizer,
    "random20": random_sizer,
    "naive_x1": naive_sizer,
}


@dataclass
class CharacterizationReport:
    """Quality statistics of one sizer over an eyechart suite."""

    sizer: str
    qualities: List[float]

    @property
    def mean_quality(self) -> float:
        return float(np.mean(self.qualities))

    @property
    def worst_quality(self) -> float:
        return float(np.max(self.qualities))

    @property
    def optimal_rate(self) -> float:
        """Fraction of charts solved exactly."""
        return float(np.mean([q <= 1.0 + 1e-9 for q in self.qualities]))


def _grade_pair(sizer: Sizer, chart: Eyechart, library: StdCellLibrary,
                seed: int) -> float:
    """Grade one (sizer, chart) cell under its own child rng
    (module-level so a process-pool executor can pickle it)."""
    drives = sizer(chart, library, np.random.default_rng(seed))
    return chart.quality_of(drives, library)


def characterize(
    sizers: Optional[Dict[str, Sizer]] = None,
    n_charts: int = 20,
    n_stages: int = 8,
    seed: int = 0,
    library: Optional[StdCellLibrary] = None,
    executor=None,
) -> List[CharacterizationReport]:
    """Grade sizers over a seeded suite of eyecharts.

    With an ``executor`` (:class:`~repro.core.parallel.FlowExecutor`),
    the (sizer × chart) grading grid fans across its workers; each cell
    gets a pre-drawn child seed, so results are identical at any worker
    count (sizers must then be picklable, i.e. module-level functions).
    """
    if n_charts < 1:
        raise ValueError("need at least one chart")
    sizers = sizers or BUILTIN_SIZERS
    library = library or make_default_library()
    rng = np.random.default_rng(seed)
    charts = [
        make_eyechart(n_stages=n_stages, seed=int(rng.integers(0, 2**31 - 1)),
                      library=library, output_load=float(rng.uniform(20.0, 60.0)))
        for _ in range(n_charts)
    ]
    if executor is not None:
        names = list(sizers)
        tasks = [
            (sizers[name], chart, library, int(rng.integers(0, 2**31 - 1)))
            for name in names
            for chart in charts
        ]
        graded = executor.map(_grade_pair, tasks)
        reports = []
        for row, name in enumerate(names):
            qualities = graded[row * len(charts):(row + 1) * len(charts)]
            bad = next((q for q in qualities if not isinstance(q, float)), None)
            if bad is not None:
                raise RuntimeError(f"grading failed for sizer {name!r}: {bad}")
            reports.append(CharacterizationReport(sizer=name, qualities=qualities))
        return reports
    reports = []
    for name, sizer in sizers.items():
        qualities = []
        for chart in charts:
            drives = sizer(chart, library, rng)
            qualities.append(chart.quality_of(drives, library))
        reports.append(CharacterizationReport(sizer=name, qualities=qualities))
    return reports
