"""Robot engineers: 24/7 expert-system task automation (Sec 3.1).

Three of the paper's "obvious, high-value applications": automated DRC
violation fixing, automated timing closure, and memory-macro placement.
Each robot owns an escalation ladder and runs its task to completion —
the trial-and-error loop that otherwise consumes expert schedule.

Usage::

    python examples/robot_engineers.py
"""

from repro.bench import pulpino_profile
from repro.core.orchestration import (
    DRCFixRobot,
    MemoryPlacementRobot,
    TimingClosureRobot,
)
from repro.eda import FlowOptions
from repro.eda.floorplan import Floorplan


def main() -> None:
    spec = pulpino_profile(scale=0.5)

    # --- robot 1: DRC fixing -------------------------------------------
    print("=== DRC-fix robot ===")
    congested = FlowOptions(target_clock_ghz=0.5, utilization=0.93,
                            router_effort=0.3, router_tracks_per_um=10.0)
    report = DRCFixRobot(max_attempts=7).run(spec, congested, seed=1)
    for i, action in enumerate(report.actions, 1):
        print(f"  attempt {i} failed -> {action}")
    print(f"  {'SOLVED' if report.solved else 'gave up'} after "
          f"{report.attempts} attempts; final DRVs "
          f"{report.final_result.final_drvs}")

    # --- robot 2: timing closure ----------------------------------------
    print("\n=== timing-closure robot ===")
    greedy = FlowOptions(target_clock_ghz=2.2, opt_passes=2)
    report = TimingClosureRobot(max_attempts=10, frequency_step=0.15).run(
        spec, greedy, seed=2
    )
    for i, action in enumerate(report.actions, 1):
        print(f"  attempt {i} failed -> {action}")
    final = report.final_result
    print(f"  {'CLOSED' if report.solved else 'open'} at "
          f"{final.options.target_clock_ghz:.2f} GHz "
          f"(wns {final.wns:.1f} ps) after {report.attempts} attempts")

    # --- robot 3: memory placement --------------------------------------
    print("\n=== memory-placement robot ===")
    floorplan = Floorplan(width=40.0, height=40.0, utilization=0.7)
    macros = [(12.0, 8.0), (8.0, 8.0), (10.0, 6.0)]
    report = MemoryPlacementRobot(grid=8).run(floorplan, macros, seed=3)
    for action in report.actions:
        print(f"  {action}")
    print(f"  {'PLACED' if report.solved else 'failed'}: "
          f"{len(floorplan.macros)} macros, "
          f"{report.attempts} candidate positions scored")


if __name__ == "__main__":
    main()
