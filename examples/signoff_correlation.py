"""Learning away analysis miscorrelation (Sec 3.2, Fig 8).

The embedded (graph-based) timer and the signoff timer disagree; the
disagreement forces a guardband; the guardband forces unneeded sizing.
This example builds the endpoint dataset from paired engine runs,
trains a correction model, and quantifies both the accuracy-for-free
shift and the optimizer work the smaller guardband saves.

Usage::

    python examples/signoff_correlation.py
"""

from repro.core.correlation import (
    MiscorrelationModel,
    accuracy_cost_curve,
    build_correlation_dataset,
    guardband_optimization_cost,
    miscorrelation_stats,
)


def main() -> None:
    print("building endpoint dataset from paired GraphSTA/SignoffSTA runs...")
    dataset = build_correlation_dataset(n_designs=6, seed=0)
    stats = miscorrelation_stats(dataset)
    print(f"  {dataset.n_samples} endpoints over 6 designs")
    print(f"  raw divergence: mean {stats['mean']:.1f} ps, MAE {stats['mae']:.1f} ps, "
          f"worst-optimistic {stats['worst_optimistic']:.1f} ps")

    train, test = dataset.split(0.7, seed=1)
    print("\naccuracy-cost tradeoff (Fig 8):")
    print(f"{'configuration':>18} {'cost':>10} {'MAE ps':>8} {'guardband ps':>13}")
    for p in accuracy_cost_curve(train, test, seed=0):
        print(f"{p.name:>18} {p.cost:>10.0f} {p.error:>8.2f} {p.guardband:>13.2f}")

    model = MiscorrelationModel(kind="gbm", seed=0).fit(train)
    report = model.report(test)
    print(f"\nGBM correction: raw MAE {report['raw_mae']:.2f} ps -> "
          f"ML MAE {report['ml_mae']:.2f} ps "
          f"({100 * (1 - report['ml_mae'] / report['raw_mae']):.0f}% error removed)")

    print("\nwhat pessimism costs (real optimizer, guardband sweep):")
    print(f"{'guardband ps':>13} {'sizing ops':>11} {'area delta um^2':>16}")
    for row in guardband_optimization_cost([0.0, 25.0, 75.0, 150.0], seed=1):
        print(f"{row['guardband']:>13.0f} {row['sizing_ops']:>11.0f} "
              f"{row['area_delta']:>16.2f}")


if __name__ == "__main__":
    main()
