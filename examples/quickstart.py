"""Quickstart: run the simulated SP&R flow on a PULPino-class core.

Usage::

    python examples/quickstart.py [target_ghz]

Synthesizes the design, floorplans, places, builds a clock tree, routes
globally, optimizes timing, detail-routes and signs off — then prints
the per-step log and final QoR.
"""

import sys

from repro.bench import pulpino_profile
from repro.eda import FlowOptions, SPRFlow


def main() -> None:
    target_ghz = float(sys.argv[1]) if len(sys.argv) > 1 else 0.70

    spec = pulpino_profile()
    options = FlowOptions(target_clock_ghz=target_ghz, utilization=0.70)
    print(f"design: {spec.name} ({spec.n_gates} gates, {spec.n_flops} flops)")
    print(f"target: {target_ghz:.2f} GHz at utilization {options.utilization}")
    print(f"(the flow exposes {FlowOptions.option_space_size():,} option combinations)\n")

    result = SPRFlow().run(spec, options, seed=42)

    print("step-by-step:")
    for log in result.logs:
        highlights = ", ".join(
            f"{k}={v:.1f}" for k, v in sorted(log.metrics.items())[:4]
        )
        print(f"  {log.step:<10} {highlights}")

    print("\nfinal QoR:")
    print(f"  area          {result.area:10.1f} um^2")
    print(f"  power         {result.power:10.1f} uW")
    print(f"  worst slack   {result.wns:10.1f} ps ({'MET' if result.timing_met else 'VIOLATED'})")
    print(f"  achieved      {result.achieved_ghz:10.3f} GHz")
    print(f"  DRVs          {result.final_drvs:10d} ({'clean' if result.routed else 'dirty'})")
    print(f"  verdict       {'SUCCESS' if result.success else 'FAILED'}")

    if not result.success:
        print("\nhint: try a lower target, e.g. "
              f"`python examples/quickstart.py {max(0.1, target_ghz - 0.1):.2f}`")


if __name__ == "__main__":
    main()
