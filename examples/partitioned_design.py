"""Partition-driven implementation: Solution 1 made concrete (Sec 2).

Splits a PULPino-class core into blocks by recursive min-cut bisection,
implements every block independently (in parallel, in the TAT model),
and compares turnaround time and outcome predictability against the
flat flow — the "flip the arrows" methodology of the paper's Fig 4(b).

Usage::

    python examples/partitioned_design.py
"""

from repro.bench import pulpino_profile
from repro.core.partition import partitioned_implementation, predictability_study
from repro.eda import FlowOptions, SPRFlow


def main() -> None:
    spec = pulpino_profile()
    options = FlowOptions(target_clock_ghz=0.6)

    print(f"flat implementation of {spec.name}...")
    flat = SPRFlow().run(spec, options, seed=0)
    print(f"  TAT {flat.runtime_proxy:.0f} work units, area {flat.area:.1f} um^2, "
          f"{'ok' if flat.success else 'FAILED'}")

    for k in (2, 4, 8):
        result = partitioned_implementation(spec, options, n_partitions=k, seed=k)
        blocks = ", ".join(
            f"{b.design.split('_')[-1]}:{b.area:.0f}um2" for b in result.blocks
        )
        print(f"\n{k} partitions ({result.n_cut_nets} cut nets): {blocks}")
        print(f"  parallel TAT {result.tat_parallel:.0f} "
              f"({flat.runtime_proxy / result.tat_parallel:.2f}x faster than flat), "
              f"serial compute {result.tat_serial:.0f}")
        print(f"  total area {result.area:.1f} um^2, all blocks "
              f"{'ok' if result.success else 'FAILED'}")

    print("\npredictability near the wall (0.85 GHz target, 4 seeds)...")
    study = predictability_study(
        spec, options.with_(target_clock_ghz=0.85), n_partitions=4, n_seeds=4
    )
    print(f"  area spread (CV): flat {study['flat_area_cv']:.4f} -> "
          f"partitioned {study['partitioned_area_cv']:.4f}")
    print(f"  timing met:       flat {study['flat_success_rate']:.0%} -> "
          f"partitioned {study['partitioned_success_rate']:.0%}")


if __name__ == "__main__":
    main()
