"""Predicting flow outcomes over longer and longer ropes (Sec 3.3).

Trains end-of-flow outcome predictors on randomized flow runs, shows
the accuracy-vs-span profile, and uses the pre-placement doom predictor
to veto hopeless runs before any placement or routing happens.

Usage::

    python examples/flow_outcome_prediction.py
"""

from repro.bench.generators import artificial_profile
from repro.core.prediction import (
    FLOW_STAGES,
    FloorplanDoomPredictor,
    build_rope_dataset,
    span_accuracy_profile,
)
from repro.eda import FlowOptions


def main() -> None:
    print("running 60 randomized flows to build the rope dataset...")
    dataset = build_rope_dataset(n_runs=60, seed=5)
    train, test = dataset.split(0.7, seed=0)

    print("\nhow early can signoff WNS be predicted?")
    print(f"{'stages seen':>12} {'R^2':>6} {'MAE ps':>8}")
    for entry in span_accuracy_profile(train, test, "wns", seed=0):
        span = int(entry["span"])
        print(f"{span:>12} {entry['r2']:>6.2f} {entry['mae']:>8.1f}"
              f"   ({' -> '.join(FLOW_STAGES[:span])})")

    print("\ntraining the doomed-floorplan predictor (pre-placement veto)...")
    specs = [artificial_profile(i) for i in range(3)]
    predictor = FloorplanDoomPredictor(threshold=0.4, seed=0)
    predictor.fit(specs, n_runs=40, seed=6)

    print("\nveto decisions for candidate (utilization, supply) setups:")
    print(f"{'utilization':>12} {'tracks/um':>10} {'P(routes)':>10} {'decision':>9}")
    spec = artificial_profile(0)
    for utilization, tracks in ((0.55, 18.0), (0.7, 14.0), (0.85, 11.0), (0.95, 8.0)):
        options = FlowOptions(utilization=utilization, router_tracks_per_um=tracks)
        p = predictor.success_probability(spec, options)
        decision = "VETO" if predictor.veto(spec, options) else "run"
        print(f"{utilization:>12.2f} {tracks:>10.1f} {p:>10.2f} {decision:>9}")


if __name__ == "__main__":
    main()
