"""Doomed-run prediction as a live flow guard (Sec 3.3, Figs 9-10).

Trains the MDP strategy card on artificial-layout router logs, prints
the card, then deploys it as a stop hook inside the SP&R flow on a
hopelessly congested design: the guarded flow terminates the detailed
router after a few iterations instead of burning the full budget.

Usage::

    python examples/doomed_run_guard.py
"""

from repro.bench import RouterLogCorpus, pulpino_profile
from repro.core.doomed import GO, MDPCardLearner, evaluate_policy, make_stop_callback
from repro.eda import FlowOptions, SPRFlow


def main() -> None:
    print("generating 600 training logfiles (artificial layouts)...")
    train = RouterLogCorpus.artificial(n=600, seed=10)
    print(f"  success rate: {train.success_rate:.2f}")

    card = MDPCardLearner().fit(train)
    counts = card.counts()
    print(f"\nstrategy card: {counts['go']} GO / {counts['stop']} STOP states "
          f"({counts['visited']} visited)")
    grid = card.as_grid()
    space = card.space
    print("     drv-bin " + "".join(f"{vb:>3}" for vb in range(space.n_violation_bins)))
    for sb in range(space.max_up, -space.max_down - 1, -2):
        row = "".join(
            "  G" if grid[vb, sb + space.max_down] == GO else "  S"
            for vb in range(space.n_violation_bins)
        )
        print(f"slope {sb:>4} {row}")

    print("\noffline accuracy on fresh CPU-floorplan logs:")
    test = RouterLogCorpus.cpu_floorplans(n=400, seed=11)
    for k in (1, 2, 3):
        print("  " + evaluate_policy(card, test, k).summary_row())

    # live deployment: a congested flow with and without the guard
    spec = pulpino_profile()
    congested = FlowOptions(utilization=0.93, router_tracks_per_um=9.0)
    print("\nrunning a congested flow WITHOUT the guard...")
    plain = SPRFlow().run(spec, congested, seed=12)
    plain_droute = [l for l in plain.logs if l.step == "droute"][0]
    print(f"  router ran {plain_droute.metrics['iterations']:.0f} iterations, "
          f"ended at {plain.final_drvs} DRVs (routed={plain.routed})")

    print("running the same flow WITH the 2-consecutive-STOP guard...")
    guard = make_stop_callback(card, consecutive=2)
    guarded = SPRFlow(stop_callback=guard).run(spec, congested, seed=12)
    guarded_droute = [l for l in guarded.logs if l.step == "droute"][0]
    print(f"  router ran {guarded_droute.metrics['iterations']:.0f} iterations "
          f"before the guard stopped it")
    saved = plain_droute.runtime_proxy - guarded_droute.runtime_proxy
    print(f"  detailed-route work saved: {saved:.0f} units "
          f"({100 * saved / max(1, plain_droute.runtime_proxy):.0f}%)")


if __name__ == "__main__":
    main()
