"""The capstone: a no-human-in-the-loop implementation campaign.

The paper opens with DARPA IDEA's goal — "a 'no human in the loop',
24-hour design framework for RTL-to-GDSII layout implementation".
This example chains every subsystem of the reproduction into exactly
that loop for one design:

1. **veto** hopeless setups before placement (doomed-floorplan model);
2. **search** the target-frequency space with a Thompson bandit under
   tool-license limits;
3. **guard** every detailed-route run with the MDP strategy card so
   doomed runs release their licenses early;
4. **repair** failures with the robot engineers' escalation ladders;
5. **record** everything in METRICS and let the miner pick the final
   option settings;
6. sign off with multi-corner analysis and fix hold.

No step asks a human anything.

Usage::

    python examples/no_human_in_the_loop.py
"""

import numpy as np

from repro.bench import RouterLogCorpus, pulpino_profile
from repro.bench.generators import artificial_profile
from repro.core.bandit import BatchBanditScheduler, FlowArmEnvironment, ThompsonSampling
from repro.core.doomed import MDPCardLearner, make_stop_callback
from repro.core.orchestration import TimingClosureRobot
from repro.core.prediction import FloorplanDoomPredictor
from repro.eda import FlowOptions, SPRFlow
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.mmmc import MMMCAnalyzer
from repro.eda.opt import TimingOptimizer
from repro.eda.placement import QuadraticPlacer
from repro.eda.synthesis import synthesize
from repro.eda.timing import GraphSTA
from repro.metrics import DataMiner, InstrumentedFlow, MetricsServer


def main() -> None:
    spec = pulpino_profile()
    server = MetricsServer()
    print(f"=== no-human-in-the-loop campaign: {spec.name} ===\n")

    # 1. train the guards once (in production these come from the archive)
    print("[1] training guards (doom predictors) from archived runs...")
    card = MDPCardLearner().fit(RouterLogCorpus.artificial(n=400, seed=1))
    guard = make_stop_callback(card, consecutive=2)
    veto = FloorplanDoomPredictor(threshold=0.35, seed=0)
    veto.fit([artificial_profile(i) for i in range(3)], n_runs=30, seed=2)

    # 2. veto hopeless setups before spending any P&R time
    print("[2] screening candidate setups...")
    candidates = [
        FlowOptions(utilization=u, router_tracks_per_um=t)
        for u in (0.6, 0.75, 0.9)
        for t in (10.0, 16.0)
    ]
    viable = []
    for options in candidates:
        p = veto.success_probability(spec, options)
        keep = p >= veto.threshold
        print(f"    util={options.utilization:.2f} tracks={options.router_tracks_per_um:>4.0f}: "
              f"P(routes)={p:.2f} -> {'keep' if keep else 'VETO'}")
        if keep:
            viable.append(options)
    base = viable[0]

    # 3. bandit search over target frequencies, guarded routing
    print("\n[3] Thompson-sampling the target frequency (3 licenses x 10 rounds)...")
    env = FlowArmEnvironment(
        spec, [0.5, 0.6, 0.7, 0.78, 0.86], base_options=base, seed=3
    )
    env.flow = SPRFlow(stop_callback=guard)  # guarded tool runs
    policy = ThompsonSampling(env.n_arms, seed=4)
    result = BatchBanditScheduler(n_iterations=10, n_concurrent=3).run(policy, env)
    # exploit: the fastest arm the campaign showed to be reliably feasible
    pulls = np.bincount([r.arm for r in result.records], minlength=env.n_arms)
    wins = np.zeros(env.n_arms)
    for rec in result.records:
        wins[rec.arm] += rec.success
    reliable = [
        i for i in range(env.n_arms)
        if pulls[i] >= 2 and wins[i] / pulls[i] >= 0.8
    ]
    target = env.frequencies[max(reliable)] if reliable else env.frequencies[0]
    for i, freq in enumerate(env.frequencies):
        rate = wins[i] / pulls[i] if pulls[i] else float("nan")
        print(f"    {freq:.2f} GHz: {int(pulls[i])} runs, success {rate:.0%}"
              if pulls[i] else f"    {freq:.2f} GHz: unexplored")
    print(f"    {result.n_successes}/{len(result.records)} runs met constraints; "
          f"chosen target: {target:.2f} GHz")

    # 4. robot closes timing if the chosen point is marginal
    print("\n[4] timing-closure robot verifies the chosen point...")
    robot = TimingClosureRobot(max_attempts=5, frequency_step=0.04)
    report = robot.run(spec, base.with_(target_clock_ghz=target), seed=5)
    final_options = report.final_result.options
    print(f"    {'closed' if report.solved else 'OPEN'} at "
          f"{final_options.target_clock_ghz:.2f} GHz after {report.attempts} attempt(s)"
          + (f" (actions: {', '.join(report.actions)})" if report.actions else ""))

    # 5. record the final implementation in METRICS, mine a sanity check
    print("\n[5] final implementation, recorded in METRICS...")
    flow = InstrumentedFlow(server)
    for seed in range(8):
        flow.run(spec, final_options, seed=100 + seed)
    miner = DataMiner(server, seed=0)
    anomalies = miner.flag_anomalies("flow.area", z_threshold=3.0)
    print(f"    {len(server)} records over {len(server.runs())} runs; "
          f"{len(anomalies)} anomalous run(s)")

    # 6. multi-corner signoff + hold fix on the final netlist
    print("\n[6] multi-corner signoff...")
    library = make_default_library()
    netlist = synthesize(spec, library, final_options.synth_effort, seed=100)
    floorplan = make_floorplan(netlist, final_options.utilization)
    placement = QuadraticPlacer().place(netlist, floorplan, seed=100)
    period = final_options.clock_period_ps
    TimingOptimizer(max_passes=6).optimize(netlist, placement, period, GraphSTA(), seed=100)
    mmmc = MMMCAnalyzer().analyze(netlist, placement, period)
    print(f"    setup WNS {mmmc.setup_wns:.1f} ps (worst view: {mmmc.worst_setup_view}); "
          f"hold WNS {mmmc.hold_wns:.1f} ps")
    if mmmc.hold_wns < 0:
        n = TimingOptimizer().fix_hold(netlist, placement, period, GraphSTA())
        print(f"    inserted {n} hold buffers")
        mmmc = MMMCAnalyzer().analyze(netlist, placement, period)
    print(f"\n=== campaign done: {'CLEAN' if mmmc.clean else 'needs another lap'} "
          f"at {final_options.target_clock_ghz:.2f} GHz, no human consulted ===")


if __name__ == "__main__":
    main()
