"""No-human-in-the-loop flow tuning with a multi-armed bandit (Sec 3.1).

Reproduces the paper's Fig 7 scenario: a Thompson-Sampling bandit
spends a budget of 5 concurrent tool licenses x 25 iterations finding
the best target frequency for a PULPino-class core under power and
area constraints — no engineer picks the target.

Usage::

    python examples/mab_flow_tuning.py
"""

import numpy as np

from repro.bench import pulpino_profile
from repro.core.bandit import (
    BatchBanditScheduler,
    FlowArmEnvironment,
    ThompsonSampling,
)

FREQUENCIES = [0.45, 0.55, 0.65, 0.72, 0.78, 0.84, 0.92]
MAX_AREA = 300.0  # um^2
MAX_POWER = 450.0  # uW


def main() -> None:
    spec = pulpino_profile()
    env = FlowArmEnvironment(
        spec, FREQUENCIES, max_area=MAX_AREA, max_power=MAX_POWER, seed=1
    )
    policy = ThompsonSampling(env.n_arms, seed=2)
    scheduler = BatchBanditScheduler(n_iterations=25, n_concurrent=5)

    print(f"arms (target GHz): {FREQUENCIES}")
    print(f"constraints: area <= {MAX_AREA} um^2, power <= {MAX_POWER} uW")
    print("running 25 iterations x 5 concurrent SP&R flows...\n")

    result = scheduler.run(policy, env)

    print(f"{'iter':>5}  sampled targets (* = met constraints)")
    by_iter = {}
    for rec in result.records:
        by_iter.setdefault(rec.iteration, []).append(rec)
    for it in sorted(by_iter):
        cells = [
            f"{FREQUENCIES[r.arm]:.2f}{'*' if r.success else ' '}"
            for r in by_iter[it]
        ]
        print(f"{it:>5}  {' '.join(cells)}")

    pulls = np.bincount([r.arm for r in result.records], minlength=len(FREQUENCIES))
    posterior = policy.posterior_mean()
    print("\narm summary:")
    print(f"{'GHz':>6} {'pulls':>6} {'posterior reward':>17}")
    for i, freq in enumerate(FREQUENCIES):
        print(f"{freq:>6.2f} {pulls[i]:>6} {posterior[i]:>17.3f}")

    best_arm = int(np.argmax(posterior))
    feasible = [info for info in env.history if info.success]
    print(f"\nbandit's choice: {FREQUENCIES[best_arm]:.2f} GHz")
    print(f"successful runs: {len(feasible)}/{len(env.history)}")
    if feasible:
        best = max(feasible, key=lambda i: i.target_ghz)
        print(f"fastest constraint-meeting run: {best.target_ghz:.2f} GHz "
              f"(area {best.result.area:.1f}, power {best.result.power:.1f})")


if __name__ == "__main__":
    main()
