"""METRICS 2.0: measure, mine, and adapt with no human (Sec 4, Fig 11).

Every flow run reports ~30 vocabulary metrics into the METRICS server;
after a seed phase the data miner recommends option settings, and the
campaign applies them automatically — the paper's "adapt tool/flow
parameters midstream without human intervention".

Usage::

    python examples/metrics_campaign.py
"""

from repro.bench import pulpino_profile
from repro.eda import FlowOptions
from repro.metrics import AdaptiveFlowSession, DataMiner


def main() -> None:
    spec = pulpino_profile(scale=0.5)
    session = AdaptiveFlowSession(spec=spec, objective="flow.area", seed=3)

    print(f"campaign on {spec.name}: 10 exploratory + 6 miner-guided runs")
    best = session.run_campaign(
        n_seed=10, n_adaptive=6, base_options=FlowOptions(target_clock_ghz=0.7)
    )

    server = session.server
    print(f"\ncollected {len(server)} metric records over {len(server.runs())} runs")

    miner = DataMiner(server, seed=0)
    print("\noption sensitivity to final area:")
    for option, value in miner.sensitivity("flow.area", design=spec.name).items():
        bar = "#" * int(40 * value)
        print(f"  {option:<24} {value:4.2f} {bar}")

    print("\nrun history (area um^2, S = success; runs 11+ are miner-guided):")
    for i, run in enumerate(session.history):
        phase = "seed " if i < session.n_seed_runs else "mined"
        print(f"  {i + 1:>2} [{phase}] area={run.area:7.1f} "
              f"target={run.options.target_clock_ghz:.2f}GHz "
              f"util={run.options.utilization:.2f} "
              f"{'S' if run.success else '-'}")

    print(f"\nbest result: area {best.area:.1f} um^2 at "
          f"{best.options.target_clock_ghz:.2f} GHz "
          f"(improvement ratio vs seed phase: {session.improvement():.3f})")


if __name__ == "__main__":
    main()
