"""Exploring the ITRS design-cost roadmap (Sec 2, Figs 1-2).

What does design technology buy?  This example projects SOC-CP design
cost under the full DT-innovation timeline and under frozen-DT
counterfactuals, reproduces the paper's footnote-1 anchors, and shows
the Design Capability Gap trajectory.

Usage::

    python examples/design_cost_explorer.py
"""

from repro.core.costmodel import CapabilityGapModel, DesignCostModel


def _money(value: float) -> str:
    if value >= 1e9:
        return f"${value / 1e9:,.1f}B"
    return f"${value / 1e6:,.1f}M"


def main() -> None:
    model = DesignCostModel()

    print("DT innovation timeline:")
    for innovation in model.innovations:
        print(f"  {innovation.year}: {innovation.name} "
              f"(x{innovation.productivity_multiplier} productivity)")

    print("\nSOC-CP design cost projection:")
    print(f"{'year':>6} {'with DT':>10} {'DT frozen @2000':>16} {'DT frozen @2013':>16}")
    for year in range(2001, 2029, 3):
        print(f"{year:>6} {_money(model.design_cost(year)):>10} "
              f"{_money(model.design_cost(year, dt_freeze_year=2000)):>16} "
              f"{_money(model.design_cost(year, dt_freeze_year=2013)):>16}")

    print("\npaper footnote-1 anchors vs this model:")
    anchors = model.footnote1_anchors()
    rows = [
        ("2013, full DT", "$45.4M", anchors["cost_2013_with_dt"]),
        ("2013, frozen @2000", "~$1B", anchors["cost_2013_frozen_2000"]),
        ("2028, frozen @2013", "$3.4B", anchors["cost_2028_frozen_2013"]),
        ("2028, frozen @2000", "~$70B", anchors["cost_2028_frozen_2000"]),
    ]
    for label, paper, measured in rows:
        print(f"  {label:<20} paper {paper:>7}   model {_money(measured)}")

    gap = CapabilityGapModel()
    print("\nDesign Capability Gap (available vs realized density):")
    print(f"{'year':>6} {'available/mm^2':>15} {'realized/mm^2':>15} {'gap':>6}")
    for year in range(1995, 2016, 4):
        print(f"{year:>6} {gap.available_density(year):>15.2e} "
              f"{gap.realized_density(year):>15.2e} {gap.gap(year):>6.2f}")


if __name__ == "__main__":
    main()
