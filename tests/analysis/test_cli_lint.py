"""`repro lint` CLI: exit codes, JSON output, and the shipped tree."""

import json
import os

import pytest

from repro.cli import main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

VIOLATION = "import random\nx = random.random()\n"


@pytest.fixture()
def violating_file(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    path = tmp_path / "mod.py"
    path.write_text(VIOLATION)
    return str(path)


def test_lint_exits_nonzero_on_error(violating_file, capsys):
    assert main(["lint", violating_file]) == 1
    out = capsys.readouterr().out
    assert "R001 error:" in out
    assert "1 finding(s)" in out


def test_lint_exits_zero_on_clean_file(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("")
    clean = tmp_path / "ok.py"
    clean.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
    assert main(["lint", str(clean)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_json_output_parses(violating_file, capsys):
    assert main(["lint", "--format=json", violating_file]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["error"] == 1
    assert payload["findings"][0]["rule"] == "R001"


def test_lint_warning_passes_default_fails_strict(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("")
    stale = tmp_path / "stale.py"
    stale.write_text("x = 1  # repro: allow[R001] -- stale suppression\n")
    assert main(["lint", str(stale)]) == 0       # warning < fail-on=error
    assert main(["lint", "--strict", str(stale)]) == 1
    assert main(["lint", "--fail-on=warning", str(stale)]) == 1
    capsys.readouterr()


def test_lint_select_and_ignore(violating_file, capsys):
    assert main(["lint", "--select=R004", violating_file]) == 0
    assert main(["lint", "--ignore=R001", violating_file]) == 0
    capsys.readouterr()


def test_lint_unknown_rule_id_is_usage_error(violating_file, capsys):
    assert main(["lint", "--select=R999", violating_file]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", os.path.join("no", "such", "dir")]) == 2
    assert "lint:" in capsys.readouterr().err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "R002", "R003", "R004",
                    "R005", "R006", "R007", "R008"):
        assert rule_id in out


def test_lint_verbose_prints_suppressed(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("")
    path = tmp_path / "mod.py"
    path.write_text(
        "import random\nx = random.random()  # repro: allow[R001] -- fixture\n"
    )
    assert main(["lint", "--verbose", str(path)]) == 0
    assert "(suppressed)" in capsys.readouterr().out


def test_shipped_tree_is_lint_clean_strict(capsys):
    """Acceptance criterion: `repro lint --strict src/repro` exits 0."""
    src = os.path.join(REPO_ROOT, "src", "repro")
    assert main(["lint", "--strict", src]) == 0, capsys.readouterr().out


def test_lint_project_mode_exit_and_stats_line(violating_file, capsys):
    assert main(["lint", "--project", "--no-cache", violating_file]) == 1
    out = capsys.readouterr().out
    assert "R001 error:" in out
    assert "project graph:" in out


def test_lint_project_json_carries_graph_stats(violating_file, capsys):
    main(["lint", "--project", "--no-cache", "--format", "json",
          violating_file])
    data = json.loads(capsys.readouterr().out)
    assert "project" in data
    assert data["project"]["files"] == 1
    assert "cache" not in data["project"]  # --no-cache: no counters


def test_lint_project_writes_and_reuses_cache(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("")
    path = tmp_path / "mod.py"
    path.write_text("def f():\n    return 1\n")
    assert main(["lint", "--project", str(path)]) == 0
    cache = tmp_path / ".repro-lint-cache.json"
    assert cache.is_file()
    capsys.readouterr()
    assert main(["lint", "--project", "--format", "json", str(path)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["project"]["cache"] == {"hits": 1, "misses": 0}


def test_shipped_tree_is_project_lint_clean_strict(capsys):
    """Acceptance criterion: `repro lint --strict --project src/repro`
    exits 0 with the cross-file rules R009-R012 enabled."""
    src = os.path.join(REPO_ROOT, "src", "repro")
    assert main(["lint", "--strict", "--project", "--no-cache", src]) == 0, \
        capsys.readouterr().out
