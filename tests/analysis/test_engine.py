"""Engine behavior: suppressions, thresholds, discovery, reporting."""

import ast
import json
import os
import textwrap

import pytest

from repro.analysis import (
    Analyzer,
    Finding,
    LintConfig,
    ModuleInfo,
    Rule,
    Severity,
    find_suppressions,
    format_human,
    format_json,
    lint_paths,
    to_dict,
)

VIOLATION = "import random\nx = random.random()\n"


def analyze(source, **cfg):
    config = LintConfig(**{"select": ["R001"], **cfg})
    return Analyzer(config).lint_source(textwrap.dedent(source))


# ------------------------------------------------------------ suppressions
def test_suppression_requires_justification():
    report = analyze("import random\nx = random.random()  # repro: allow[R001]\n")
    rule_ids = {f.rule_id for f in report.findings}
    assert "R001" in rule_ids, "unjustified allow must not suppress"
    assert "S001" in rule_ids, "unjustified allow must itself be reported"
    assert report.suppressed == []


def test_suppression_on_line_above():
    report = analyze(
        "import random\n"
        "# repro: allow[R001] -- exercising the line-above form\n"
        "x = random.random()\n"
    )
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0].suppression_note == \
        "exercising the line-above form"


def test_unused_suppression_reported():
    report = analyze(
        "import random  # repro: allow[R001] -- nothing wrong on this line\n"
    )
    assert [f.rule_id for f in report.findings] == ["S002"]


def test_suppression_covers_multiline_statement_span():
    # the finding lands on the call's *last* physical line; the allow
    # trailing the opening line must still cover it
    report = analyze(
        "import random\n"
        "x = max(  # repro: allow[R001] -- exercising the span widening\n"
        "    0.0,\n"
        "    random.random(),\n"
        ")\n"
    )
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["R001"]


def test_suppression_above_multiline_statement_covers_span():
    report = analyze(
        "import random\n"
        "# repro: allow[R001] -- line-above form, multi-line statement\n"
        "x = max(\n"
        "    0.0,\n"
        "    random.random(),\n"
        ")\n"
    )
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["R001"]


def test_suppression_span_does_not_leak_past_statement():
    report = analyze(
        "import random\n"
        "x = max(  # repro: allow[R001] -- covers only this statement\n"
        "    0.0,\n"
        "    1.0,\n"
        ")\n"
        "y = random.random()\n"
    )
    rule_ids = sorted(f.rule_id for f in report.findings)
    assert rule_ids == ["R001", "S002"]


def test_find_suppressions_records_statement_end_line():
    source = (
        "# repro: allow[R003] -- above a 3-line statement\n"
        "items = sorted(\n"
        "    data,\n"
        ")\n"
    )
    sups = find_suppressions(source, ast.parse(source))
    assert len(sups) == 1
    assert (sups[0].line, sups[0].end_line) == (1, 4)


def test_suppression_for_other_rule_does_not_silence():
    report = analyze(
        "import random\nx = random.random()  # repro: allow[R003] -- wrong id\n"
    )
    rule_ids = sorted(f.rule_id for f in report.findings)
    assert rule_ids == ["R001", "S002"]


def test_docstring_allow_example_is_not_a_suppression():
    sups = find_suppressions(
        '"""Docs show: # repro: allow[R001] -- example."""\n'
        "x = 1  # repro: allow[R002] -- a real comment\n"
    )
    assert len(sups) == 1
    assert sups[0].line == 2


def test_multi_rule_suppression():
    source = (
        "import random, os\n"
        "# repro: allow[R001, R003] -- fixture exercises both\n"
        "x = [n for n in os.listdir('.') if random.random() > 0.5]\n"
    )
    report = Analyzer(LintConfig(select=["R001", "R003"])).lint_source(source)
    assert report.findings == []
    assert len(report.suppressed) == 2


# ------------------------------------------------------------- thresholds
def test_fail_on_severity_threshold():
    report = analyze(VIOLATION)  # R001 is an error
    assert LintConfig(fail_on=Severity.ERROR).fails(report)
    assert not LintConfig(fail_on=Severity.ERROR).fails(
        analyze("x = 1\n")
    )


def test_strict_fails_on_warnings():
    report = analyze(
        "import random  # repro: allow[R001] -- stale, nothing here\n"
    )  # only an S002 warning
    assert report.max_severity == Severity.WARNING
    assert not LintConfig(fail_on=Severity.ERROR).fails(report)
    assert LintConfig(strict=True).fails(report)


def test_select_unknown_rule_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        Analyzer(LintConfig(select=["R999"]))


def test_ignore_drops_rule():
    report = analyze(VIOLATION, select=None, ignore=["R001"])
    assert not [f for f in report.findings if f.rule_id == "R001"]


# ------------------------------------------------------------ file layer
def test_lint_paths_discovers_and_sorts(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    pkg = tmp_path / "pkg"
    (pkg / "sub").mkdir(parents=True)
    (pkg / "b.py").write_text(VIOLATION)
    (pkg / "a.py").write_text(VIOLATION)
    (pkg / "sub" / "c.py").write_text(VIOLATION)
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "junk.py").write_text("import random\nrandom.random()\n")
    report = lint_paths([str(pkg)], LintConfig(select=["R001"]))
    assert report.n_files == 3
    assert [f.path for f in report.findings] == \
        ["pkg/a.py", "pkg/b.py", "pkg/sub/c.py"]


def test_parse_error_is_a_finding(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = lint_paths([str(bad)], LintConfig(select=["R001"]))
    assert [f.rule_id for f in report.findings] == ["E000"]
    assert report.findings[0].severity == Severity.ERROR


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([os.path.join("definitely", "not", "here.py")])


def test_deterministic_output(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    for name in ("m1.py", "m2.py"):
        (tmp_path / name).write_text(VIOLATION)
    runs = [format_json(lint_paths([str(tmp_path)],
                                   LintConfig(select=["R001"])))
            for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]


# ------------------------------------------------------------- reporting
def test_json_report_shape():
    payload = json.loads(format_json(analyze(VIOLATION)))
    assert payload["version"] == 1
    assert payload["counts"]["error"] == 1
    finding = payload["findings"][0]
    assert finding["rule"] == "R001"
    assert finding["severity"] == "error"
    assert finding["line"] == 2


def test_human_report_mentions_location_and_summary():
    text = format_human(analyze(VIOLATION))
    assert "snippet.py:2:" in text
    assert "R001 error:" in text
    assert "1 finding(s)" in text


def test_to_dict_includes_suppressed():
    report = analyze(
        "import random\nx = random.random()  # repro: allow[R001] -- fixture\n"
    )
    payload = to_dict(report)
    assert payload["findings"] == []
    assert payload["suppressed"][0]["suppression_note"] == "fixture"


# ------------------------------------------------------- extension point
def test_custom_rule_registration_and_validation():
    class NoTodoRule(Rule):
        rule_id = "R901"
        name = "no-todo"
        severity = Severity.INFO
        description = "test-only rule"

        def check_module(self, module):
            for lineno, line in enumerate(module.lines, start=1):
                if "TODO" in line:
                    yield self.finding(module, lineno, "todo found")

    rule = NoTodoRule()
    tree = ast.parse("x = 1  # TODO later\n")
    module = ModuleInfo(path="m.py", source="x = 1  # TODO later\n", tree=tree)
    findings = list(rule.check_module(module))
    assert findings == [Finding("R901", Severity.INFO, "m.py", 1,
                                "todo found")]

    from repro.analysis import register_rule

    class BadId(Rule):
        rule_id = "X1"
        name = "x"
        description = "x"

    with pytest.raises(ValueError, match="R###"):
        register_rule(BadId)
