"""Whole-program layer: summaries, graphs, determinism, the cache."""

import ast
import json
import random
import textwrap

from repro.analysis import LintConfig, ModuleInfo, lint_paths
from repro.analysis.project import (
    ModuleSummary,
    build_context,
    lint_project_modules,
    lint_project_paths,
    module_name_for,
    summarize_module,
)


def make_module(path, source):
    source = textwrap.dedent(source)
    return ModuleInfo(path=path, source=source, tree=ast.parse(source))


def keys(report):
    return [(f.path, f.line, f.rule_id, f.message) for f in report.findings]


# ------------------------------------------------------------- summaries
def test_module_name_for_strips_src_prefix():
    assert module_name_for("src/repro/eda/flow.py") == "repro.eda.flow"
    assert module_name_for("src/repro/eda/__init__.py") == "repro.eda"
    assert module_name_for("tools/gen.py") == "tools.gen"


def test_summary_captures_locks_mutations_and_boundary():
    summary = summarize_module(make_module("src/pkg/mod.py", """
        import threading
        import numpy as np

        _LOCK = threading.Lock()
        _CACHE = {}

        def guarded(key):
            with _LOCK:
                _CACHE[key] = 1

        def naked(key):
            _CACHE[key] = 2

        def launch(executor):
            rng = np.random.default_rng()
            executor.run_jobs([rng])

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
    """))
    assert summary.module_name == "pkg.mod"
    assert summary.lock_globals == ["_LOCK"]
    assert summary.lock_attrs == {"Holder": ["_lock"]}
    assert "_CACHE" in summary.mutable_globals

    guarded = summary.functions["guarded"]
    assert [(m.name, m.locks) for m in guarded.mutations] == \
        [("pkg.mod._CACHE", ("pkg.mod._LOCK",))]
    naked = summary.functions["naked"]
    assert [(m.name, m.locks) for m in naked.mutations] == \
        [("pkg.mod._CACHE", ())]

    launch = summary.functions["launch"]
    assert [(b.method, b.kind) for b in launch.boundary] == \
        [("run_jobs", "rng-name")]
    assert [ctor for _line, ctor in launch.rng_unseeded] == \
        ["numpy.random.default_rng"]


def test_summary_round_trips_through_dict():
    summary = summarize_module(make_module("src/pkg/mod.py", """
        import threading
        _LOCK = threading.Lock()
        STATE = {}

        def write(path, rows):
            with open("stats.jsonl", "a") as fh:
                for row in rows:
                    fh.write(row)

        def mutate(k):
            with _LOCK:
                STATE[k] = 1
    """))
    restored = ModuleSummary.from_dict(
        json.loads(json.dumps(summary.to_dict())))
    assert restored.to_dict() == summary.to_dict()
    write = restored.functions["write"]
    assert [(w.call, w.protections) for w in write.writes] == \
        [("open", ("append",))]


def test_locals_are_not_shared_state():
    summary = summarize_module(make_module("src/pkg/mod.py", """
        ITEMS = []

        def local_only():
            items = []
            items.append(1)
            return items
    """))
    assert summary.functions["local_only"].mutations == []


# ----------------------------------------------------------------- graphs
def _graph_fixture_modules():
    return [
        make_module("src/pkg/a.py", """
            from pkg.b import helper

            def top():
                return helper()
        """),
        make_module("src/pkg/b.py", """
            def helper():
                return _inner()

            def _inner():
                return 1
        """),
    ]


def test_call_and_import_graph_edges():
    summaries = {m.path: summarize_module(m) for m in
                 _graph_fixture_modules()}
    ctx = build_context("/tmp", summaries)
    assert ctx.import_graph["pkg.a"] == ("pkg.b",)
    assert ctx.call_graph["pkg.a.top"] == ("pkg.b.helper",)
    assert ctx.call_graph["pkg.b.helper"] == ("pkg.b._inner",)


def test_context_is_deterministic_under_discovery_order():
    modules = _graph_fixture_modules()
    baseline = None
    for seed in range(4):
        shuffled = list(modules)
        random.Random(seed).shuffle(shuffled)
        summaries = {m.path: summarize_module(m) for m in shuffled}
        ctx = build_context("/tmp", summaries)
        snapshot = (sorted(ctx.summaries), ctx.import_graph,
                    ctx.call_graph, ctx.stats())
        if baseline is None:
            baseline = snapshot
        assert snapshot == baseline


def test_report_is_deterministic_under_discovery_order():
    modules = [
        make_module("src/pkg/a.py", """
            import threading
            _LOCK = threading.Lock()
            STATE = {}

            def guarded(k):
                with _LOCK:
                    STATE[k] = 1
        """),
        make_module("src/pkg/b.py", """
            from pkg.a import STATE

            def naked(k):
                STATE[k] = 2
        """),
    ]
    baseline = None
    for seed in range(4):
        shuffled = list(modules)
        random.Random(seed).shuffle(shuffled)
        report = lint_project_modules(shuffled, root="/tmp",
                                      config=LintConfig(select=["R009"]))
        if baseline is None:
            baseline = keys(report)
            assert baseline, "fixture should produce an R009 finding"
        assert keys(report) == baseline


# ------------------------------------------------------------------ cache
def _write_project(tmp_path):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("")
    (pkg / "a.py").write_text(textwrap.dedent("""
        import threading
        _LOCK = threading.Lock()
        STATE = {}

        def guarded(k):
            with _LOCK:
                STATE[k] = 1
    """))
    (pkg / "b.py").write_text(textwrap.dedent("""
        from pkg.a import STATE

        def naked(k):
            STATE[k] = 2
    """))
    (pkg / "c.py").write_text("def quiet():\n    return 3\n")
    return pkg


def _cfg(tmp_path, **kw):
    kw.setdefault("select", ["R001", "R002", "R009"])
    kw.setdefault("project", True)
    kw.setdefault("project_root", str(tmp_path))
    return LintConfig(**kw)


def test_warm_run_hits_cache_and_matches_cold(tmp_path):
    pkg = _write_project(tmp_path)
    cold = lint_project_paths([str(pkg)], _cfg(tmp_path))
    assert cold.project_stats["cache"] == {"hits": 0, "misses": 3}
    assert (tmp_path / ".repro-lint-cache.json").is_file()

    warm = lint_project_paths([str(pkg)], _cfg(tmp_path))
    assert warm.project_stats["cache"] == {"hits": 3, "misses": 0}
    assert keys(warm) == keys(cold)
    assert any(f.rule_id == "R009" for f in warm.findings)


def test_editing_one_file_reanalyzes_only_it(tmp_path):
    pkg = _write_project(tmp_path)
    cold = lint_project_paths([str(pkg)], _cfg(tmp_path))
    # fix the race in b.py: delete the unguarded mutation
    (pkg / "b.py").write_text("def naked(k):\n    return k\n")
    warm = lint_project_paths([str(pkg)], _cfg(tmp_path))
    assert warm.project_stats["cache"] == {"hits": 2, "misses": 1}
    assert not any(f.rule_id == "R009" for f in warm.findings)
    # and the fresh result matches a from-scratch run
    scratch = lint_project_paths([str(pkg)],
                                 _cfg(tmp_path, use_cache=False))
    assert keys(warm) == keys(scratch)
    assert cold.project_stats["cache"]["misses"] == 3


def test_rule_selection_change_invalidates_cache(tmp_path):
    pkg = _write_project(tmp_path)
    lint_project_paths([str(pkg)], _cfg(tmp_path))
    other = lint_project_paths([str(pkg)],
                               _cfg(tmp_path, select=["R009", "R010"]))
    assert other.project_stats["cache"]["misses"] == 3


def test_no_cache_mode_writes_nothing(tmp_path):
    pkg = _write_project(tmp_path)
    lint_project_paths([str(pkg)], _cfg(tmp_path, use_cache=False))
    assert not (tmp_path / ".repro-lint-cache.json").exists()


def test_cache_replays_suppressions_and_parse_errors(tmp_path):
    pkg = _write_project(tmp_path)
    (pkg / "b.py").write_text(textwrap.dedent("""
        from pkg.a import STATE

        def naked(k):
            STATE[k] = 2  # repro: allow[R009] -- single-writer by contract
    """))
    (pkg / "broken.py").write_text("def oops(:\n")
    cold = lint_project_paths([str(pkg)], _cfg(tmp_path))
    warm = lint_project_paths([str(pkg)], _cfg(tmp_path))
    for report in (cold, warm):
        assert [f.rule_id for f in report.suppressed] == ["R009"]
        assert [f.rule_id for f in report.findings] == ["E000"]
    assert warm.project_stats["cache"]["misses"] == 0


def test_project_mode_agrees_with_classic_on_module_rules(tmp_path):
    pkg = _write_project(tmp_path)
    classic = lint_paths(
        [str(pkg)], LintConfig(select=["R001", "R002", "R003", "R004"],
                               project_root=str(tmp_path)))
    project = lint_project_paths(
        [str(pkg)], _cfg(tmp_path, select=["R001", "R002", "R003", "R004"],
                         use_cache=False))
    assert keys(project) == keys(classic)


def test_corrupt_cache_file_is_tolerated(tmp_path):
    pkg = _write_project(tmp_path)
    (tmp_path / ".repro-lint-cache.json").write_text("{not json")
    report = lint_project_paths([str(pkg)], _cfg(tmp_path))
    assert report.project_stats["cache"] == {"hits": 0, "misses": 3}
    warm = lint_project_paths([str(pkg)], _cfg(tmp_path))
    assert warm.project_stats["cache"] == {"hits": 3, "misses": 0}
