"""Cross-file rule pack (R009-R012): each rule fires on its violating
fixture, stays quiet on the clean twin, and honors inline suppressions;
R011 is additionally mutation-tested against the repo's real frozen
manifests."""

import ast
import shutil
import textwrap
from pathlib import Path

from repro.analysis import LintConfig, ModuleInfo
from repro.analysis.project import lint_project_modules, lint_project_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_module(path, source):
    source = textwrap.dedent(source)
    return ModuleInfo(path=path, source=source, tree=ast.parse(source))


def lint_modules(rule_id, sources, root="/tmp"):
    modules = [make_module(path, src) for path, src in sources.items()]
    return lint_project_modules(modules, root=root,
                                config=LintConfig(select=[rule_id]))


def rule_findings(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


# ------------------------------------------------------------------ R009
def test_r009_cross_module_mixed_discipline_fires():
    report = lint_modules("R009", {
        "src/pkg/state.py": """
            import threading
            _LOCK = threading.Lock()
            REGISTRY = {}

            def register(k, v):
                with _LOCK:
                    REGISTRY[k] = v
        """,
        "src/pkg/other.py": """
            from pkg.state import REGISTRY

            def sneak(k):
                REGISTRY[k] = None
        """,
    })
    found = rule_findings(report, "R009")
    assert len(found) == 1
    assert found[0].path == "src/pkg/other.py"
    assert "pkg.state._LOCK" in found[0].message


def test_r009_consistent_discipline_is_clean():
    report = lint_modules("R009", {
        "src/pkg/state.py": """
            import threading
            _LOCK = threading.Lock()
            REGISTRY = {}
            UNLOCKED = {}

            def register(k, v):
                with _LOCK:
                    REGISTRY[k] = v

            def also_register(k, v):
                with _LOCK:
                    REGISTRY[k] = v

            def single_owner(k):
                UNLOCKED[k] = 1  # never locked anywhere: not mixed
        """,
    })
    assert rule_findings(report, "R009") == []


def test_r009_inherited_lock_through_private_helper():
    report = lint_modules("R009", {
        "src/pkg/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.records = []

                def receive(self, rec):
                    with self._lock:
                        self._append(rec)

                def flush(self):
                    with self._lock:
                        self._append(None)

                def _append(self, rec):
                    self.records.append(rec)
        """,
    })
    assert rule_findings(report, "R009") == []


def test_r009_init_only_helper_is_exempt():
    report = lint_modules("R009", {
        "src/pkg/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.records = []
                    self._load()

                def _load(self):
                    self.records.append(0)  # pre-publication: safe

                def receive(self, rec):
                    with self._lock:
                        self.records.append(rec)
        """,
    })
    assert rule_findings(report, "R009") == []


def test_r009_unguarded_public_caller_of_helper_fires():
    report = lint_modules("R009", {
        "src/pkg/server.py": """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.records = []

                def receive(self, rec):
                    with self._lock:
                        self._append(rec)

                def sneak(self, rec):
                    self._append(rec)

                def _append(self, rec):
                    self.records.append(rec)
        """,
    })
    found = rule_findings(report, "R009")
    assert len(found) == 1
    assert "Server.records" in found[0].message


def test_r009_suppressed_with_justification():
    report = lint_modules("R009", {
        "src/pkg/state.py": """
            import threading
            _LOCK = threading.Lock()
            REGISTRY = {}

            def register(k, v):
                with _LOCK:
                    REGISTRY[k] = v

            def bootstrap(k):
                REGISTRY[k] = 1  # repro: allow[R009] -- runs before threads start
        """,
    })
    assert rule_findings(report, "R009") == []
    assert [f.rule_id for f in report.suppressed] == ["R009"]


# ------------------------------------------------------------------ R010
def test_r010_naked_shared_write_fires():
    report = lint_modules("R010", {
        "src/pkg/io.py": """
            import json

            def persist(stats, path):
                with open("cache-stats.json", "w") as fh:
                    json.dump(stats, fh)
        """,
    })
    found = rule_findings(report, "R010")
    assert len(found) == 1
    assert "cache-stats.json" in found[0].message


def test_r010_protected_writes_are_clean():
    report = lint_modules("R010", {
        "src/pkg/io.py": """
            import fcntl
            import json
            import os
            import tempfile

            def append_jsonl(row):
                with open("metrics.jsonl", "a") as fh:
                    fh.write(row)

            def flocked(stats, lockpath):
                with open(lockpath) as lk:
                    fcntl.flock(lk, fcntl.LOCK_EX)
                    with open("cache-stats.json", "w") as fh:
                        json.dump(stats, fh)

            def tmp_replace(stats, path="run_stats.json"):
                fd, tmp = tempfile.mkstemp(dir=".")
                with os.fdopen(fd, "w") as fh:
                    json.dump(stats, fh)
                os.replace(tmp, path)
        """,
    })
    assert rule_findings(report, "R010") == []


def test_r010_private_paths_not_flagged():
    report = lint_modules("R010", {
        "src/pkg/io.py": """
            def dump(design, out_path):
                with open(out_path, "w") as fh:
                    fh.write(design)
        """,
    })
    assert rule_findings(report, "R010") == []


def test_r010_pathlib_write_text_fires():
    report = lint_modules("R010", {
        "src/pkg/io.py": """
            def persist(stats_path, payload):
                stats_path.write_text(payload)
        """,
    })
    assert len(rule_findings(report, "R010")) == 1


def test_r010_suppressed_with_justification():
    report = lint_modules("R010", {
        "src/pkg/io.py": """
            import json

            def persist(stats, path):
                # repro: allow[R010] -- single process owns this file
                with open("cache-stats.json", "w") as fh:
                    json.dump(stats, fh)
        """,
    })
    assert rule_findings(report, "R010") == []
    assert [f.rule_id for f in report.suppressed] == ["R010"]


# ------------------------------------------------------------------ R011
def _kernel_project(tmp_path, live_body, ref_body):
    """Bodies are unindented statement lines for ``spread``."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("")

    def method(cls_name, body):
        return (f"class {cls_name}:\n    def spread(self, xs):\n"
                + textwrap.indent(textwrap.dedent(body).strip(),
                                  " " * 8) + "\n")

    (pkg / "kernels.py").write_text(method("Placer", live_body))
    refs = tmp_path / "tests" / "eda"
    refs.mkdir(parents=True)
    (refs / "kern_reference.py").write_text(
        method("ReferencePlacer", ref_body)
        + '\nFROZEN_PAIRS = {\n'
          '    "src/pkg/kernels.py::Placer.spread": '
          '"ReferencePlacer.spread",\n}\n')
    return pkg


def _lint_kernels(tmp_path, pkg):
    return lint_project_paths(
        [str(pkg)],
        LintConfig(select=["R011"], project=True, use_cache=False,
                   project_root=str(tmp_path)))


def test_r011_identical_kernels_are_clean(tmp_path):
    body = "return [x * 0.5 for x in xs]"
    pkg = _kernel_project(tmp_path, body, body)
    assert rule_findings(_lint_kernels(tmp_path, pkg), "R011") == []


def test_r011_formatting_and_docstrings_do_not_count_as_drift(tmp_path):
    live = '"""Live docstring."""\nreturn [x * 0.5   for x in xs]  # comment'
    ref = "return [x * 0.5 for x in xs]"
    pkg = _kernel_project(tmp_path, live, ref)
    assert rule_findings(_lint_kernels(tmp_path, pkg), "R011") == []


def test_r011_algorithmic_drift_fires_on_live_function(tmp_path):
    pkg = _kernel_project(tmp_path,
                          "return [x * 0.51 for x in xs]",
                          "return [x * 0.5 for x in xs]")
    found = rule_findings(_lint_kernels(tmp_path, pkg), "R011")
    assert len(found) == 1
    assert found[0].path == "src/pkg/kernels.py"
    assert "drifted" in found[0].message


def test_r011_stale_manifest_entry_fires_on_reference_file(tmp_path):
    pkg = _kernel_project(tmp_path, "return xs", "return xs")
    ref = tmp_path / "tests" / "eda" / "kern_reference.py"
    ref.write_text(ref.read_text().replace(
        "Placer.spread\": \"ReferencePlacer.spread",
        "Placer.gone\": \"ReferencePlacer.spread"))
    found = rule_findings(_lint_kernels(tmp_path, pkg), "R011")
    assert len(found) == 1
    assert found[0].path == "tests/eda/kern_reference.py"
    assert "stale" in found[0].message


def test_r011_mutation_of_real_scalar_kernel_is_caught(tmp_path):
    """Inject drift into a copy of the real tree; the shipped manifests
    must catch it (the oracle is not a tautology)."""
    live_rel = "src/repro/eda/placement.py"
    pkg_dir = tmp_path / "src" / "repro" / "eda"
    pkg_dir.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("")
    refs = tmp_path / "tests" / "eda"
    refs.mkdir(parents=True)
    shutil.copy(REPO_ROOT / "tests" / "eda" / "placement_reference.py",
                refs / "placement_reference.py")
    source = (REPO_ROOT / live_rel).read_text()
    config = LintConfig(select=["R011"], project=True, use_cache=False,
                        project_root=str(tmp_path))

    (tmp_path / live_rel).write_text(source)
    clean = lint_project_paths([str(tmp_path / "src")], config)
    assert rule_findings(clean, "R011") == []

    marker = "def _spread"
    at = source.index(marker)
    mutated = source[:at] + source[at:].replace("0.5", "0.50001", 1)
    assert mutated != source
    (tmp_path / live_rel).write_text(mutated)
    found = rule_findings(
        lint_project_paths([str(tmp_path / "src")], config), "R011")
    assert any("QuadraticPlacer._spread" in f.message for f in found)


def test_r011_results_are_aux_cached(tmp_path):
    body = "return [x * 0.5 for x in xs]"
    pkg = _kernel_project(tmp_path, body, body)
    config = LintConfig(select=["R011"], project=True,
                        project_root=str(tmp_path))
    lint_project_paths([str(pkg)], config)
    cache = (tmp_path / ".repro-lint-cache.json").read_text()
    assert "R011:tests/eda/kern_reference.py" in cache
    warm = lint_project_paths([str(pkg)], config)
    assert rule_findings(warm, "R011") == []


# ------------------------------------------------------------------ R012
def test_r012_generator_in_payload_fires():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            import numpy as np

            def campaign(executor, jobs):
                rng = np.random.default_rng(42)
                executor.run_jobs([(job, rng) for job in jobs])
        """,
    })
    found = rule_findings(report, "R012")
    assert len(found) == 1
    assert "process boundary" in found[0].message


def test_r012_inline_construction_in_payload_fires():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            import numpy as np

            def campaign(executor):
                executor.submit(np.random.default_rng(7))
        """,
    })
    assert len(rule_findings(report, "R012")) == 1


def test_r012_worker_callable_with_unseeded_rng_fires():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            from pkg.work import job

            def campaign(executor, seeds):
                executor.map(job, seeds)
        """,
        "src/pkg/work.py": """
            import numpy as np

            def job(seed):
                return _draw()

            def _draw():
                rng = np.random.default_rng()
                return rng.random()
        """,
    })
    found = rule_findings(report, "R012")
    assert len(found) == 1
    assert found[0].path == "src/pkg/run.py"
    assert "src/pkg/work.py" in found[0].message


def test_r012_initializer_with_unseeded_rng_fires():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            import random
            from concurrent.futures import ProcessPoolExecutor

            def _init_worker():
                random.Random()

            def pool():
                return ProcessPoolExecutor(initializer=_init_worker)
        """,
    })
    found = rule_findings(report, "R012")
    assert len(found) == 1
    assert "initializer" in found[0].message


def test_r012_seeded_workers_are_clean():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            from pkg.work import job

            def campaign(executor, seeds):
                executor.map(job, seeds)
        """,
        "src/pkg/work.py": """
            import numpy as np

            def job(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """,
    })
    assert rule_findings(report, "R012") == []


def test_r012_suppressed_with_justification():
    report = lint_modules("R012", {
        "src/pkg/run.py": """
            import numpy as np

            def campaign(executor, jobs):
                rng = np.random.default_rng(42)
                executor.run_jobs([(job, rng) for job in jobs])  # repro: allow[R012] -- threads, not processes
        """,
    })
    assert rule_findings(report, "R012") == []
    assert [f.rule_id for f in report.suppressed] == ["R012"]


# ---------------------------------------------- R006/R008 in project mode
def test_r006_fires_in_project_mode(tmp_path):
    pkg = tmp_path / "proj"
    (pkg / "metrics").mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("")
    (pkg / "metrics" / "schema.py").write_text(
        'VOCABULARY = {\n    "flow.area": ("u", "d"),\n}\n')
    (pkg / "emitter.py").write_text(textwrap.dedent("""
        def report(tx):
            tx.send("bogus.metric", 1.0)
    """))
    report = lint_project_paths(
        [str(pkg)], LintConfig(select=["R006"], project=True,
                               use_cache=False,
                               project_root=str(tmp_path)))
    messages = [f.message for f in report.findings]
    assert any("bogus.metric" in m for m in messages)
    assert any("'flow.area' has no emitter" in m for m in messages)


def test_r008_fires_in_project_mode(tmp_path):
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (tmp_path / "pyproject.toml").write_text("")
    (pkg / "cli.py").write_text(textwrap.dedent("""
        def build(sub):
            sub.add_argument("--undocumented-flag", type=int)
    """))
    report = lint_project_paths(
        [str(pkg)], LintConfig(select=["R008"], project=True,
                               use_cache=False,
                               project_root=str(tmp_path)))
    assert any("'--undocumented-flag'" in f.message
               for f in report.findings)
