"""Rule-pack coverage: every rule fires on its violating fixture, stays
quiet on the clean twin, and honors a justified inline suppression."""

import textwrap

import pytest

from repro.analysis import Analyzer, LintConfig, all_rules


def lint_snippet(rule_id, source):
    analyzer = Analyzer(LintConfig(select=[rule_id]))
    return analyzer.lint_source(textwrap.dedent(source))


# (rule id, violating snippet, clean snippet); the violating line for
# the suppression variant is marked with {ALLOW} so the test can append
# a justified allow-comment to it
PER_MODULE_CASES = {
    "R001": (
        """
        import numpy as np
        import random

        def sample(n):
            a = np.random.rand(n){ALLOW}
            random.shuffle(a)
            np.random.seed(0)
            return a
        """,
        """
        import numpy as np
        import random

        def sample(n, seed):
            rng = np.random.default_rng(seed)
            stdlib_rng = random.Random(seed)
            a = rng.random(n)
            stdlib_rng.shuffle(a)
            return a
        """,
    ),
    "R002": (
        """
        _CACHE = {}
        _ITEMS = []

        def remember(key, value):
            _CACHE[key] = value{ALLOW}

        def push(value):
            _ITEMS.append(value)
        """,
        """
        import threading

        _CACHE = {}
        _LOCK = threading.Lock()
        _CONSTANT = {"a": 1}  # read-only: never mutated

        def remember(key, value):
            with _LOCK:
                _CACHE[key] = value

        def local_shadow():
            _ITEMS = []
            _ITEMS.append(1)  # a local, not module state
            return _ITEMS
        """,
    ),
    "R003": (
        """
        import os

        def collect(paths):
            out = []
            for name in os.listdir("."):{ALLOW}
                out.append(name)
            out.extend(list({1, 2, 3}))
            return out
        """,
        """
        import os

        def collect(paths):
            out = []
            for name in sorted(os.listdir(".")):
                out.append(name)
            out.extend(sorted({1, 2, 3}))
            n = len({1, 2, 3})  # order-insensitive reducer
            dedup = {x for x in set(paths)}  # building a set again
            return out, n, dedup
        """,
    ),
    "R004": (
        """
        import time
        from datetime import datetime

        def stamp(result):
            result.t = time.time(){ALLOW}
            result.day = datetime.now()
            return result
        """,
        """
        import time

        def measure(fn):
            t0 = time.perf_counter()  # durations are fine
            fn()
            return time.perf_counter() - t0
        """,
    ),
    "R005": (
        """
        def campaign(executor, jobs):
            stop = lambda history: len(history) > 3
            return executor.run_jobs(jobs, stop_callback=stop){ALLOW}
        """,
        """
        def should_stop(history):
            return len(history) > 3

        def campaign(executor, jobs):
            return executor.run_jobs(jobs, stop_callback=should_stop)
        """,
    ),
    "R007": (
        """
        def drain(queue):
            try:
                return queue.get()
            except:{ALLOW}
                pass
        """,
        """
        def drain(queue, stats):
            try:
                return queue.get()
            except Exception:
                stats.dropped += 1
                return None
        """,
    ),
}


@pytest.mark.parametrize("rule_id", sorted(PER_MODULE_CASES))
def test_violating_fixture_detected(rule_id):
    bad, _ = PER_MODULE_CASES[rule_id]
    report = lint_snippet(rule_id, bad.replace("{ALLOW}", ""))
    assert report.findings, f"{rule_id} missed its violating fixture"
    assert all(f.rule_id == rule_id for f in report.findings)


@pytest.mark.parametrize("rule_id", sorted(PER_MODULE_CASES))
def test_clean_fixture_passes(rule_id):
    _, good = PER_MODULE_CASES[rule_id]
    report = lint_snippet(rule_id, good.replace("{ALLOW}", ""))
    assert report.findings == [], (
        f"{rule_id} false-positived: "
        f"{[f.format() for f in report.findings]}"
    )


@pytest.mark.parametrize("rule_id", sorted(PER_MODULE_CASES))
def test_justified_suppression_silences(rule_id):
    bad, _ = PER_MODULE_CASES[rule_id]
    allowed = bad.replace(
        "{ALLOW}", f"  # repro: allow[{rule_id}] -- fixture: intentional"
    )
    report = lint_snippet(rule_id, allowed)
    assert len(report.suppressed) >= 1
    assert all(f.line != s.line for f in report.findings
               for s in report.suppressed), "suppressed line still reported"
    # the remaining (unsuppressed) violations in the fixture still fire
    unsuppressed_lines = {f.line for f in report.findings
                          if f.rule_id == rule_id}
    full = lint_snippet(rule_id, bad.replace("{ALLOW}", ""))
    assert len(unsuppressed_lines) < len(full.findings)


# ---------------------------------------------------------------- R006
def make_metrics_project(tmp_path, emit_name, schema_names):
    pkg = tmp_path / "proj"
    (pkg / "metrics").mkdir(parents=True)
    vocab = ",\n    ".join(f'"{n}": ("u", "d")' for n in schema_names)
    (pkg / "metrics" / "schema.py").write_text(
        f"VOCABULARY = {{\n    {vocab},\n}}\n"
    )
    (pkg / "emitter.py").write_text(textwrap.dedent(f"""
        def report(tx):
            tx.send("{emit_name}", 1.0)
    """))
    (tmp_path / "pyproject.toml").write_text("")  # project root marker
    return str(pkg)


def test_r006_unknown_metric_name(tmp_path):
    proj = make_metrics_project(tmp_path, "bogus.metric", ["flow.area"])
    report = Analyzer(LintConfig(select=["R006"])).lint_paths([proj])
    messages = [f.message for f in report.findings]
    assert any("bogus.metric" in m and "not in the METRICS" in m
               for m in messages)
    # flow.area is also unemitted -> flagged on the schema side
    assert any("'flow.area' has no emitter" in m for m in messages)


def test_r006_clean_project(tmp_path):
    proj = make_metrics_project(tmp_path, "flow.area", ["flow.area"])
    report = Analyzer(LintConfig(select=["R006"])).lint_paths([proj])
    assert report.findings == []


def test_r006_mapping_dict_counts_as_emitter(tmp_path):
    proj = make_metrics_project(tmp_path, "flow.area",
                                ["flow.area", "synth.area"])
    (tmp_path / "proj" / "wrappers.py").write_text(
        '_STEP = {("synth", "area"): "synth.area"}\n'
    )
    report = Analyzer(LintConfig(select=["R006"])).lint_paths([proj])
    assert report.findings == []


# ---------------------------------------------------------------- R008
def make_cli_project(tmp_path, documented):
    pkg = tmp_path / "proj"
    pkg.mkdir()
    (pkg / "cli.py").write_text(textwrap.dedent("""
        def build(sub):
            sub.add_argument("--alpha", type=int)
            sub.add_argument("--beta-mode", action="store_true")
    """))
    (tmp_path / "pyproject.toml").write_text("")
    docs = tmp_path / "docs"
    docs.mkdir()
    docs.joinpath("cli.md").write_text(
        "# CLI\n" + "\n".join(f"`{flag}` does things" for flag in documented)
    )
    return str(pkg)


def test_r008_undocumented_flag_detected(tmp_path):
    proj = make_cli_project(tmp_path, documented=["--alpha"])
    report = Analyzer(LintConfig(select=["R008"])).lint_paths([proj])
    assert [f for f in report.findings if "'--beta-mode'" in f.message]
    assert not [f for f in report.findings if "'--alpha'" in f.message]


def test_r008_all_documented_passes(tmp_path):
    proj = make_cli_project(tmp_path, documented=["--alpha", "--beta-mode"])
    report = Analyzer(LintConfig(select=["R008"])).lint_paths([proj])
    assert report.findings == []


# ------------------------------------------------------------- catalog
def test_rule_pack_is_complete():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert ids == sorted(ids)
    assert {"R001", "R002", "R003", "R004",
            "R005", "R006", "R007", "R008"} <= set(ids)
    assert len(ids) >= 8
    for rule in rules:
        assert rule.name and rule.description
