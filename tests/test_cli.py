"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_cost_command(capsys):
    assert main(["cost", "--year", "2013"]) == 0
    out = capsys.readouterr().out
    assert "SOC-CP design cost in 2013" in out
    assert "$" in out


def test_cost_with_freeze(capsys):
    main(["cost", "--year", "2028", "--freeze", "2013"])
    out = capsys.readouterr().out
    assert "DT frozen at 2013" in out


def test_flow_command(capsys, tmp_path):
    verilog = tmp_path / "out.v"
    def_file = tmp_path / "out.def"
    code = main([
        "flow", "--design", "PHY", "--target", "0.4", "--seed", "3",
        "--write-verilog", str(verilog), "--write-def", str(def_file),
    ])
    out = capsys.readouterr().out
    assert "design=phy" in out
    assert "area=" in out
    assert verilog.exists() and "module phy" in verilog.read_text()
    assert def_file.exists() and "DIEAREA" in def_file.read_text()
    assert code in (0, 1)


def test_flow_verbose_prints_log(capsys):
    main(["flow", "--design", "PHY", "--target", "0.4", "--verbose"])
    out = capsys.readouterr().out
    assert "SP&R flow log" in out


def test_noise_command(capsys):
    assert main(["noise", "--design", "PHY", "--targets", "0.4,0.6", "--seeds", "3"]) == 0
    out = capsys.readouterr().out
    assert "noise growth ratio" in out


def test_doomed_command(capsys):
    assert main(["doomed", "--train", "80", "--test", "60"]) == 0
    out = capsys.readouterr().out
    assert "STOP(s): total error" in out


def test_mab_command(capsys):
    assert main([
        "mab", "--design", "PHY", "--arms", "0.4,0.8", "--iterations", "3",
        "--concurrent", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "recommended target" in out
    assert "executor: jobs=" in out  # the stats line


def test_mab_command_parallel_with_cache(capsys, tmp_path):
    args = ["mab", "--design", "PHY", "--arms", "0.4,0.8", "--iterations", "2",
            "--concurrent", "2", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0  # second run replays from the disk cache
    out = capsys.readouterr().out
    assert "disk=4" in out


def test_explore_command(capsys):
    code = main(["explore", "--design", "PHY", "--rounds", "1",
                 "--concurrent", "2", "--seed", "1"])
    out = capsys.readouterr().out
    assert "2 runs over 1 rounds" in out
    assert "executor: jobs=2" in out
    assert code == 0


def test_explore_with_stage_cache(capsys):
    code = main(["explore", "--design", "PHY", "--rounds", "1",
                 "--concurrent", "2", "--seed", "1", "--stage-cache"])
    out = capsys.readouterr().out
    assert "stage_misses=" in out  # stage accounting surfaced in the summary
    assert code == 0


def test_metrics_summary_reports_incremental_timing(capsys, tmp_path):
    out_file = tmp_path / "campaign.jsonl"
    assert main(["explore", "--design", "PHY", "--rounds", "1",
                 "--concurrent", "2", "--seed", "1", "--stage-cache",
                 "--metrics-out", str(out_file)]) == 0
    capsys.readouterr()
    assert main(["metrics", "summary", "--in", str(out_file)]) == 0
    out = capsys.readouterr().out
    # the staged path ran real timing, so the sta.* events are nonzero
    # and the summary surfaces the incremental-vs-full digest
    assert "sta.incremental.updates" in out
    assert "timing:" in out
    assert "incremental updates vs" in out
    assert "full propagations" in out


def test_cache_stats_command(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    assert main(["explore", "--design", "PHY", "--rounds", "1",
                 "--concurrent", "2", "--seed", "1", "--stage-cache",
                 "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "2 disk entries" in out
    assert "schema 2: 2 entries (usable)" in out
    assert "stage prefix" in out
    assert "droute_signoff" in out
    assert "work: delivered=" in out


def test_cache_stats_flags_stale_schemas(capsys, tmp_path):
    (tmp_path / "old.json").write_text('{"design": "x", "schema": 1}')
    (tmp_path / "bad.json").write_text("{not json")
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "schema 1: 1 entries (stale -> treated as misses)" in out
    assert "1 unreadable entries" in out
    assert "no cache-stats.json" in out


def test_cache_stats_missing_dir(capsys, tmp_path):
    assert main(["cache", "stats", "--dir", str(tmp_path / "nope")]) == 1


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("flow", "noise", "doomed", "mab", "cost", "cache"):
        assert command in text


def test_stage_cache_flag_on_campaign_parsers():
    parser = build_parser()
    args = parser.parse_args(["mab", "--stage-cache"])
    assert args.stage_cache is True
    args = parser.parse_args(["explore"])
    assert args.stage_cache is False
