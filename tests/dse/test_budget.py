"""Budgets: declaration validation and the campaign ledger."""

import pytest

from repro.dse import Budget, DSEEngine
from repro.dse.budget import BudgetTracker


def test_budget_validation():
    with pytest.raises(ValueError):
        Budget(max_runs=0)
    with pytest.raises(ValueError):
        Budget(max_runtime_proxy=0.0)
    with pytest.raises(ValueError):
        Budget(max_wall_s=-1.0)
    assert Budget().unlimited
    assert not Budget(max_runs=5).unlimited


def test_tracker_run_and_proxy_exhaustion():
    tracker = BudgetTracker(Budget(max_runs=3))
    assert not tracker.exhausted
    tracker.charge_runs(3)
    assert tracker.exhausted

    tracker = BudgetTracker(Budget(max_runtime_proxy=100.0))
    tracker.charge_proxy(99.0)
    assert not tracker.exhausted
    tracker.charge_proxy(1.0)
    assert tracker.exhausted


def test_tracker_wall_budget_uses_monotonic_clock():
    tracker = BudgetTracker(Budget(max_wall_s=1e-9))
    assert tracker.wall_s > 0
    assert tracker.exhausted


def test_unlimited_tracker_never_exhausts():
    tracker = BudgetTracker(Budget())
    tracker.charge_runs(10**6)
    tracker.charge_proxy(1e12)
    assert not tracker.exhausted


def test_run_budget_stops_explorer_at_round_boundary(small_spec):
    """max_runs=3 with 3-wide rounds: exactly one round executes."""
    result = DSEEngine(
        strategy="explorer", budget=Budget(max_runs=3),
        params={"n_rounds": 4, "n_concurrent": 3},
    ).run(small_spec, seed=6)
    assert result.n_runs == 3
    assert len(result.trace) == 1


def test_proxy_budget_stops_sweep_between_batches(small_spec):
    tight = DSEEngine(
        strategy="sweep", budget=Budget(max_runtime_proxy=1.0),
        params={"limit": 6, "n_concurrent": 2},
    ).run(small_spec, seed=6)
    assert tight.n_runs == 2  # first batch runs, then the ledger trips
    open_ended = DSEEngine(
        strategy="sweep", params={"limit": 6, "n_concurrent": 2},
    ).run(small_spec, seed=6)
    assert open_ended.n_runs == 6
    # the executed prefix is bit-identical: a budget truncates, never skews
    assert open_ended.all_scores[:2] == tight.all_scores
