"""SearchSpace: sampling contracts, design knobs, feature encoding."""

import numpy as np
import pytest

from repro.core.orchestration.tree import default_option_tree
from repro.dse import SearchSpace, default_flow_space
from repro.eda.flow import FlowOptions


def test_sample_is_seed_deterministic():
    space = default_flow_space()
    a = space.sample(np.random.default_rng(3))
    b = space.sample(np.random.default_rng(3))
    assert a == b
    assert set(a) == {name for _, name in space.tree.option_names()}


def test_sample_matches_bare_tree_stream():
    """Without design knobs the space consumes exactly the tree's rng
    stream — the explorer bit-identity contract."""
    space = default_flow_space()
    assert space.sample(np.random.default_rng(9)) == \
        default_option_tree().sample(np.random.default_rng(9))


def test_design_knobs_ride_along_and_strip():
    space = SearchSpace(design_knobs={"n_gates": [100, 200, 400]})
    point = space.sample(np.random.default_rng(0))
    assert point["n_gates"] in (100, 200, 400)
    options = space.to_flow_options(point)
    assert isinstance(options, FlowOptions)
    assert not hasattr(options, "n_gates")
    assert space.design_part(point) == {"n_gates": point["n_gates"]}


def test_design_knob_validation():
    with pytest.raises(ValueError, match="no values"):
        SearchSpace(design_knobs={"n_gates": []})
    with pytest.raises(ValueError, match="shadows"):
        SearchSpace(design_knobs={"utilization": [0.5]})


def test_perturb_changes_at_most_one_flow_option():
    space = SearchSpace(design_knobs={"n_gates": [100, 200]})
    rng = np.random.default_rng(4)
    point = space.sample(rng)
    for _ in range(20):
        clone = space.perturb(point, rng)
        changed = [k for k in point if clone[k] != point[k]]
        assert len(changed) <= 1
        assert clone["n_gates"] == point["n_gates"]  # knobs never re-roll


def test_n_points_and_enumerate():
    space = SearchSpace(design_knobs={"n_gates": [100, 200]})
    assert space.n_points == space.tree.n_trajectories * 2
    points = list(space.enumerate(limit=10))
    assert len(points) == 10
    for point in points:
        space.to_flow_options(point)  # every enumerated point materializes


def test_features_align_with_names():
    space = SearchSpace(design_knobs={"flavor": ["a", "b", "c"]})
    names = space.feature_names()
    point = space.sample(np.random.default_rng(7))
    point["flavor"] = "c"
    row = space.features(point)
    assert len(row) == len(names)
    assert row[names.index("flavor")] == 2.0  # menu index for non-numerics
    assert row[names.index("utilization")] == point["utilization"]
    # a missing knob contributes 0.0 rather than crashing the surrogate
    del point["flavor"]
    assert space.features(point)[names.index("flavor")] == 0.0


def test_default_flow_space_custom_frequencies():
    space = default_flow_space(target_frequencies=(0.4, 0.9))
    menus = [
        list(values)
        for step in space.tree.steps
        for name, values in step.options.items()
        if name == "target_clock_ghz"
    ]
    assert menus == [[0.4, 0.9]]
