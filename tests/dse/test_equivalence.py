"""Façade equivalence: the legacy entrypoints and the engine's own API
must produce identical outcomes, and the live annealing kernels must
behave like their frozen references (the R011 manifest's runtime half).
"""

import numpy as np
import pytest

from repro.core.bandit import (
    BatchBanditScheduler,
    FlowArmEnvironment,
    ThompsonSampling,
)
from repro.core.orchestration import TrajectoryExplorer
from repro.core.search import AdaptiveMultistart, BisectionProblem
from repro.core.search.gwtw import go_with_the_winners, independent_multistart
from repro.core.search.multistart import random_multistart
from repro.dse import DSEEngine
from repro.dse.strategies import landscape as live
from tests.eda import search_reference as frozen


@pytest.fixture(scope="module")
def problem():
    return BisectionProblem.random_community(
        n_nodes=64, n_communities=8, p_in=0.6, p_out=0.06, seed=1
    )


# --------------------------------------------------- façade == engine
def test_explorer_facade_equals_engine(small_spec):
    facade = TrajectoryExplorer(n_concurrent=3, n_rounds=2).explore(
        small_spec, seed=11
    )
    engine = DSEEngine(
        strategy="explorer", params={"n_rounds": 2, "n_concurrent": 3},
    ).run(small_spec, seed=11)
    assert facade.best_score == engine.best_score
    assert facade.best_result == engine.best_result
    assert facade.score_trace == engine.trace
    assert (facade.n_runs, facade.n_pruned) == (engine.n_runs, engine.n_pruned)


def test_gwtw_facade_equals_engine(problem):
    facade = go_with_the_winners(problem, n_threads=4, n_stages=3,
                                 steps_per_stage=20, seed=5)
    engine = DSEEngine(
        strategy="gwtw",
        params={"n_threads": 4, "n_stages": 3, "steps_per_stage": 20},
    ).run(problem, seed=5)
    assert facade.best_cost == engine.best_score
    assert np.array_equal(facade.best_assign, engine.best_assign)
    assert facade.cost_trace == engine.trace
    assert facade.method == "gwtw"


def test_independent_facade_keeps_multistart_tag(problem):
    facade = independent_multistart(problem, n_threads=3, n_stages=2,
                                    steps_per_stage=15, seed=5)
    assert facade.method == "multistart"  # the historical GWTWResult tag


def test_adaptive_multistart_facade_equals_engine(problem):
    params = {"n_initial": 4, "n_adaptive_rounds": 2, "starts_per_round": 2,
              "elite_size": 2}
    facade = AdaptiveMultistart(**{k: v for k, v in params.items()}).run(
        problem, seed=7
    )
    engine = DSEEngine(strategy="multistart", params=params).run(
        problem, seed=7
    )
    assert facade.best_cost == engine.best_score
    assert facade.all_costs == engine.all_scores
    assert np.array_equal(facade.best_assign, engine.best_assign)
    assert facade.method == "adaptive"


def test_random_multistart_facade_equals_engine(problem):
    facade = random_multistart(problem, n_starts=5, seed=2)
    engine = DSEEngine(strategy="random", params={"n_starts": 5}).run(
        problem, seed=2
    )
    assert facade.best_cost == engine.best_score
    assert facade.all_costs == engine.all_scores


def test_bandit_facade_equals_engine(small_spec):
    def campaign(run):
        env = FlowArmEnvironment(small_spec, [0.5, 0.7], seed=3)
        policy = ThompsonSampling(2, seed=4)
        return run(policy, env)

    facade = campaign(BatchBanditScheduler(2, 2).run)
    engine_result = campaign(
        lambda policy, env: DSEEngine(
            strategy="bandit",
            params={"n_iterations": 2, "n_concurrent": 2},
        ).run((policy, env), seed=None)
    )
    assert facade.records == engine_result.records
    assert facade.total_reward == engine_result.to_schedule_result().total_reward


def test_legacy_validation_messages_survive(problem, small_spec):
    with pytest.raises(ValueError, match="GWTW needs at least 2 threads"):
        go_with_the_winners(problem, n_threads=1)
    with pytest.raises(ValueError, match="survivor_fraction"):
        go_with_the_winners(problem, survivor_fraction=1.5)
    with pytest.raises(ValueError, match="at least 1 start"):
        random_multistart(problem, n_starts=0)


# ----------------------------------------- live kernels == frozen refs
def test_anneal_steps_matches_frozen_reference(problem):
    def run(module):
        rng = np.random.default_rng(13)
        assign = problem.random_solution(rng)
        thread = module._Thread(assign.copy(), problem.cost(assign), 3.0)
        module._anneal_steps(problem, thread, 80, rng, 0.97)
        return thread

    a, b = run(live), run(frozen)
    assert a.cost == b.cost
    assert a.temperature == b.temperature
    assert np.array_equal(a.assign, b.assign)


def test_consensus_start_matches_frozen_reference(problem):
    rng = np.random.default_rng(21)
    elite = [problem.random_solution(rng) for _ in range(4)]
    live_start = live._consensus_start(problem, elite,
                                       np.random.default_rng(2))
    frozen_start = frozen._consensus_start(problem, elite,
                                           np.random.default_rng(2))
    assert np.array_equal(live_start, frozen_start)
    assert problem.is_balanced(live_start)


def test_rebalance_matches_frozen_reference(problem):
    skewed = np.zeros(problem.n_nodes, dtype=bool)
    skewed[: problem.n_nodes * 3 // 4] = True
    live_fix = live._rebalance(problem, skewed, np.random.default_rng(8))
    frozen_fix = frozen._rebalance(problem, skewed, np.random.default_rng(8))
    assert np.array_equal(live_fix, frozen_fix)
    assert problem.is_balanced(live_fix)
