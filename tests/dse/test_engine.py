"""DSEEngine: strategy registry, result normalization, dse.* reporting."""

import numpy as np
import pytest

from repro.core.parallel import FlowExecutor
from repro.core.search import BisectionProblem
from repro.dse import DSEEngine, DSEResult, available_strategies
from repro.dse.registry import get_strategy, load_builtin_strategies
from repro.metrics import MetricsCollector, MetricsServer
from repro.metrics.schema import DSE_CAMPAIGN_METRICS


def test_builtin_strategies_are_registered():
    load_builtin_strategies()
    names = available_strategies()
    assert {"explorer", "bandit", "sweep", "gwtw", "independent",
            "multistart", "random"} <= set(names)
    assert names == sorted(names)


def test_unknown_strategy_rejected():
    with pytest.raises(KeyError, match="no strategy registered"):
        DSEEngine(strategy="hill_climbing")
    with pytest.raises(KeyError, match="no strategy registered"):
        get_strategy("hill_climbing")


def test_engine_runs_explorer_without_explicit_executor(small_spec):
    result = DSEEngine(
        strategy="explorer", params={"n_rounds": 1, "n_concurrent": 2},
    ).run(small_spec, seed=3)
    assert result.method == "explorer"
    assert result.n_runs == 2
    assert result.best_result is not None
    assert result.runtime_proxy_executed > 0


def test_engine_runs_landscape_strategy():
    problem = BisectionProblem.random_community(
        n_nodes=48, n_communities=6, p_in=0.6, p_out=0.06, seed=1
    )
    result = DSEEngine(
        strategy="gwtw",
        params={"n_threads": 4, "n_stages": 3, "steps_per_stage": 20},
    ).run(problem, seed=2)
    assert result.method == "gwtw"
    assert np.isfinite(result.best_score)
    assert result.best_assign is not None
    assert result.total_moves == 4 * 3 * 20


def test_dse_result_aliases():
    result = DSEResult(method="independent", objective="cut_cost",
                       best_score=7.0, trace=[9.0, 7.0],
                       all_scores=[9.0, 7.0], n_runs=4)
    assert result.score_trace is result.trace
    assert result.cost_trace is result.trace
    assert result.all_costs is result.all_scores
    assert result.best_cost == result.best_score == 7.0
    assert result.n_local_searches == result.n_runs == 4
    assert result.legacy_method == "multistart"  # GWTWResult baseline tag


def test_campaign_summary_lands_in_metrics_server(small_spec):
    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, cache=None,
                          collector=collector) as executor:
            result = DSEEngine(
                strategy="explorer", executor=executor,
                params={"n_rounds": 1, "n_concurrent": 2},
            ).run(small_spec, seed=8)
        collector.flush()
    vector = server.run_vector("dse-explorer-8")
    for metric in ("dse.runs", "dse.failed", "dse.pruned", "dse.killed",
                   "dse.kill_proxy_saved", "dse.runtime_proxy",
                   "dse.best_score"):
        assert metric in vector
    assert vector["dse.runs"] == result.n_runs == 2
    assert vector["dse.best_score"] == pytest.approx(result.best_score)
    assert vector["dse.killed"] == 0.0  # no kill policy on this campaign
    assert set(vector) - {"dse.surrogate_fit"} >= set(DSE_CAMPAIGN_METRICS) - {
        "dse.surrogate_fit"
    }


def test_no_collector_means_no_reporting(small_spec):
    with FlowExecutor(n_workers=1, cache=None) as executor:
        result = DSEEngine(
            strategy="explorer", executor=executor,
            params={"n_rounds": 1, "n_concurrent": 2},
        ).run(small_spec, seed=8)
    assert result.n_runs == 2  # reporting is optional, the campaign is not
