"""Objectives: ranking keys, success gating, Pareto fronts."""

import dataclasses
import math

import pytest

from repro.core.orchestration.explorer import default_score
from repro.dse import OBJECTIVES, Objective, ParetoObjective
from repro.dse.objective import resolve_objective
from repro.eda.flow import FlowOptions, SPRFlow


@pytest.fixture(scope="module")
def good_result(small_spec):
    result = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6),
                           seed=5)
    assert result.success
    return result


@pytest.fixture(scope="module")
def failed_result(good_result):
    return dataclasses.replace(good_result, routed=False, timing_met=False)


def test_score_objective_matches_historical_explorer(good_result):
    objective = OBJECTIVES["score"]()
    assert objective.value(good_result) == default_score(good_result)
    assert objective.key(good_result) == default_score(good_result)


def test_min_direction_negates_key_only(good_result):
    area = OBJECTIVES["area"]()
    assert area.value(good_result) == good_result.area  # natural units
    assert area.key(good_result) == -good_result.area   # higher-is-better


def test_requires_success_ranks_failures_last(good_result, failed_result):
    area = OBJECTIVES["area"]()
    assert area.key(failed_result) == -math.inf
    assert area.key(good_result) > area.key(failed_result)
    # score ranks failures too (the explorer's progress signal)
    score = OBJECTIVES["score"]()
    assert math.isfinite(score.key(failed_result))


def test_objective_validates_direction():
    with pytest.raises(ValueError):
        Objective("bad", lambda r: 0.0, direction="sideways")


def test_pareto_validation():
    area = OBJECTIVES["area"]()
    wns = OBJECTIVES["wns"]()
    with pytest.raises(ValueError, match="at least 2 axes"):
        ParetoObjective(objectives=(area,))
    with pytest.raises(ValueError, match="one weight per"):
        ParetoObjective(objectives=(area, wns), weights=(1.0,))
    with pytest.raises(ValueError, match="positive"):
        ParetoObjective(objectives=(area, wns), weights=(1.0, -1.0))


def test_pareto_front_keeps_non_dominated(good_result, failed_result):
    pareto = OBJECTIVES["pareto"]()
    small_slow = dataclasses.replace(good_result, area=100.0, wns=10.0,
                                     power=50.0)
    big_fast = dataclasses.replace(good_result, area=200.0, wns=500.0,
                                   power=50.0)
    dominated = dataclasses.replace(good_result, area=250.0, wns=5.0,
                                    power=60.0)
    front = []
    for result in (small_slow, big_fast, dominated, failed_result):
        front = pareto.update_front(front, result)
    assert small_slow in front and big_fast in front
    assert dominated not in front      # worse on every axis than big_fast
    assert failed_result not in front  # success-gated
    assert pareto.key(failed_result) == -math.inf
    assert math.isfinite(pareto.key(small_slow))


def test_resolve_objective_forms():
    assert resolve_objective("area").name == "area"
    assert resolve_objective(default_score).name == "score"
    custom = resolve_objective(lambda r: r.area)
    assert custom.name == "custom" and custom.direction == "max"
    instance = OBJECTIVES["wns"]()
    assert resolve_objective(instance) is instance
    with pytest.raises(ValueError, match="unknown objective"):
        resolve_objective("beauty")
    with pytest.raises(TypeError):
        resolve_objective(42)
