"""Surrogate proposer: training gates, determinism, guided proposals."""

import numpy as np
import pytest

from repro.core.parallel import FlowExecutor
from repro.dse import DSEEngine, SurrogateProposer, default_flow_space
from repro.metrics import MetricsCollector, MetricsServer


def test_constructor_validation():
    with pytest.raises(ValueError):
        SurrogateProposer(model="neural")
    with pytest.raises(ValueError):
        SurrogateProposer(min_fit=3)
    with pytest.raises(ValueError):
        SurrogateProposer(n_candidates=1)


def test_not_ready_falls_back_to_blind_perturbation():
    space = default_flow_space()
    proposer = SurrogateProposer()
    donor = space.sample(np.random.default_rng(0))
    assert not proposer.ready
    blind = space.perturb(donor, np.random.default_rng(5))
    proposed = proposer.propose(space, donor, np.random.default_rng(5))
    assert proposed == blind  # same rng stream, same point


def test_fit_gates_on_min_rows_and_new_data():
    space = default_flow_space()
    proposer = SurrogateProposer(min_fit=4, random_state=1)
    rng = np.random.default_rng(2)
    for _ in range(3):
        point = space.sample(rng)
        features = proposer.point_features(space, point)
        proposer.observe(features, features[0])
    assert not proposer.maybe_fit()  # 3 rows < min_fit
    proposer.observe(proposer.point_features(space, space.sample(rng)), 0.5)
    assert proposer.maybe_fit()
    assert proposer.ready and proposer.n_fits == 1
    assert np.isfinite(proposer.fit_score)
    assert not proposer.maybe_fit()  # no new rows, no refit


def test_non_finite_observations_are_dropped():
    proposer = SurrogateProposer(min_fit=4)
    proposer.observe([1.0] * 6, -np.inf)
    proposer.observe([1.0] * 6, np.nan)
    assert proposer._X == []


def test_guided_proposal_is_deterministic_and_model_argmax():
    """Train on 'higher utilization is better'; the proposer must pick
    the highest-utilization candidate of its draw, reproducibly."""
    space = default_flow_space()
    rng = np.random.default_rng(3)
    proposer = SurrogateProposer(min_fit=8, n_candidates=8, random_state=0)
    for _ in range(32):
        point = space.sample(rng)
        features = proposer.point_features(space, point)
        proposer.observe(features, float(point["utilization"]))
    assert proposer.maybe_fit()

    donor = space.sample(np.random.default_rng(1))
    first = proposer.propose(space, donor, np.random.default_rng(9))
    again = proposer.propose(space, donor, np.random.default_rng(9))
    assert first == again
    # the pick is exactly the model argmax over the candidate draw
    rng_check = np.random.default_rng(9)
    candidates = [space.perturb(donor, rng_check) for _ in range(8)]
    predicted = np.asarray(proposer._model.predict(
        np.asarray([proposer.point_features(space, c) for c in candidates])
    ), dtype=float)
    assert first == candidates[int(np.argmax(predicted))]


def test_engine_campaign_trains_surrogate_from_metrics(small_spec):
    """End to end: a collecting campaign feeds the proposer from the
    METRICS run vectors and lands dse.surrogate_fit."""
    server = MetricsServer()
    surrogate = SurrogateProposer(min_fit=4, random_state=0)
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, cache=None,
                          collector=collector) as executor:
            result = DSEEngine(
                strategy="explorer", executor=executor, surrogate=surrogate,
                params={"n_rounds": 3, "n_concurrent": 4},
            ).run(small_spec, seed=2)
        collector.flush()
    assert surrogate.n_fits >= 1
    assert result.surrogate_fit is not None
    assert server.run_vector("dse-explorer-2")["dse.surrogate_fit"] == \
        pytest.approx(result.surrogate_fit)


def test_surrogate_changes_the_campaign_but_not_its_accounting(small_spec):
    """A guided explorer consumes a different rng stream (documented),
    yet still runs the same number of jobs under the same budget."""
    blind = DSEEngine(
        strategy="explorer", params={"n_rounds": 2, "n_concurrent": 3},
    ).run(small_spec, seed=4)
    guided = DSEEngine(
        strategy="explorer", surrogate=SurrogateProposer(min_fit=4),
        params={"n_rounds": 2, "n_concurrent": 3},
    ).run(small_spec, seed=4)
    assert guided.n_runs == blind.n_runs == 6
    assert np.isfinite(guided.best_score)
