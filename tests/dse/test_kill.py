"""Online doomed-run killing: policy semantics, executor accounting,
and bit-identical campaigns at any worker count (the property that
makes killing a pure cost optimization, never a QoR gamble)."""

import pickle

import pytest

from repro.core.doomed.evaluate import make_stop_callback
from repro.core.parallel import FlowExecutor
from repro.dse import DSEEngine, train_kill_policy
from repro.dse.kill import CardKillPolicy, HMMKillPolicy
from repro.metrics import MetricsCollector, MetricsServer

RISING = [3000.0, 3400.0, 3900.0, 4500.0, 5200.0, 6000.0, 7000.0]
CONVERGING = [3000.0, 2200.0, 1500.0, 900.0, 400.0, 120.0, 20.0]


def test_policies_validate_consecutive(mdp_policy):
    with pytest.raises(ValueError):
        CardKillPolicy(mdp_policy.card, consecutive=0)
    with pytest.raises(ValueError):
        HMMKillPolicy(train_kill_policy("hmm", seed=0).predictor, consecutive=0)
    with pytest.raises(ValueError, match="unknown kill-policy kind"):
        train_kill_policy("oracle")


def test_card_policy_matches_legacy_closure(mdp_policy):
    """The picklable policy and the historical closure agree on every
    prefix of both a doomed and a converging history."""
    legacy = make_stop_callback(mdp_policy.card, mdp_policy.consecutive)
    for history in (RISING, CONVERGING):
        for cut in range(1, len(history) + 1):
            assert mdp_policy(history[:cut]) == legacy(history[:cut])
    assert mdp_policy(RISING)          # a diverging run does get killed
    assert not mdp_policy(CONVERGING)  # a converging run never does


def test_policies_survive_pickling(mdp_policy):
    clone = pickle.loads(pickle.dumps(mdp_policy))
    assert clone(RISING) == mdp_policy(RISING)
    hmm = train_kill_policy("hmm", seed=0)
    assert pickle.loads(pickle.dumps(hmm))(RISING) == hmm(RISING)


def _kill_campaign(executor, spec, points, policy, seed=4):
    engine = DSEEngine(
        strategy="sweep", executor=executor, kill_policy=policy,
        params={"points": points, "n_concurrent": 2},
    )
    return engine.run(spec, seed=seed)


def test_killing_saves_work_and_reports_stats(mcu_spec, doomed_points,
                                              mdp_policy):
    with FlowExecutor(n_workers=1, cache=None) as executor:
        result = _kill_campaign(executor, mcu_spec, doomed_points, mdp_policy)
        assert result.n_killed == 2          # exactly the doomed points
        assert result.kill_proxy_saved > 0
        assert executor.stats.kills == 2
        assert executor.stats.kill_proxy_saved == result.kill_proxy_saved
        assert "kills=2" in executor.stats.summary()


def test_kill_campaign_is_worker_count_invariant(mcu_spec, doomed_points,
                                                 mdp_policy):
    """Satellite acceptance: same survivors, same QoR, same exec.killed.*
    counts at n_workers=1 and 4."""
    outcomes = {}
    for n_workers in (1, 4):
        server = MetricsServer()
        with MetricsCollector(server, cross_process=n_workers > 1) as collector:
            with FlowExecutor(n_workers=n_workers, cache=None,
                              collector=collector) as executor:
                result = _kill_campaign(executor, mcu_spec,
                                        doomed_points, mdp_policy)
            collector.flush()
        killed_runs = {
            run_id for run_id in server.runs()
            if server.run_vector(run_id).get("exec.killed.run") == 1.0
        }
        survivor_qor = {
            run_id: (vec.get("flow.area"), vec.get("signoff.wns"),
                     vec.get("flow.achieved_ghz"))
            for run_id in server.runs()
            for vec in [server.run_vector(run_id)]
            if vec.get("exec.killed.run") == 0.0
        }
        saved = sum(
            record.value
            for record in server.query(metric="exec.killed.proxy_saved")
        )
        outcomes[n_workers] = (result.all_scores, result.best_score,
                               result.n_killed, result.kill_proxy_saved,
                               killed_runs, survivor_qor, saved)

    serial, parallel = outcomes[1], outcomes[4]
    assert serial == parallel
    assert serial[2] == 2                # kills actually happened
    assert serial[6] == serial[3] > 0    # records agree with the result


def test_unkilled_campaign_reports_zero_kill_events(small_spec):
    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, cache=None,
                          collector=collector) as executor:
            result = DSEEngine(
                strategy="sweep", executor=executor,
                params={"limit": 2, "n_concurrent": 2},
            ).run(small_spec, seed=1)
        collector.flush()
    assert result.n_killed == 0
    for run_id in server.runs():
        vec = server.run_vector(run_id)
        if run_id.startswith("dse-"):
            continue
        assert vec["exec.killed.run"] == 0.0
        assert vec["exec.killed.proxy_saved"] == 0.0
