"""Executor handling across bandit environments (the silently-ignored
executor bug): serial-only environments must warn, flow environments
must actually use the pool — and never warn."""

import warnings

import pytest

from repro.core.bandit import (
    BatchBanditScheduler,
    FlowArmEnvironment,
    SyntheticBanditEnvironment,
    ThompsonSampling,
)
from repro.core.parallel import FlowExecutor


def test_synthetic_env_warns_when_given_an_executor():
    env = SyntheticBanditEnvironment([0.5, 0.9], seed=0)
    with FlowExecutor(n_workers=1, cache=None) as executor:
        with pytest.warns(RuntimeWarning,
                          match="executes pulls serially"):
            outcomes = env.pull_batch([0, 1], executor=executor)
    assert len(outcomes) == 2  # the batch still runs (serially)


def test_synthetic_env_is_quiet_without_executor():
    env = SyntheticBanditEnvironment([0.5, 0.9], seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        env.pull_batch([0, 1])


def test_scheduler_surfaces_the_warning(small_spec):
    """The full scheduler path warns too — a campaign that believes it
    is parallel finds out it is not."""
    env = SyntheticBanditEnvironment([0.4, 0.8], seed=1)
    with FlowExecutor(n_workers=1, cache=None) as executor:
        with pytest.warns(RuntimeWarning, match="executor is ignored"):
            result = BatchBanditScheduler(2, 2, executor=executor).run(
                ThompsonSampling(2, seed=2), env
            )
    assert len(result.records) == 4


def test_flow_env_uses_the_executor_without_warning(small_spec):
    env = FlowArmEnvironment(small_spec, [0.5, 0.7], seed=3)
    with FlowExecutor(n_workers=1, cache=None) as executor:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcomes = env.pull_batch([0, 1], executor=executor)
    assert len(outcomes) == 2
    assert executor.stats.jobs_submitted == 2  # the pool really ran the pulls
