"""Fixtures for the declarative-DSE suite.

The kill-policy tests need runs the router actually dooms; the tiny
session spec routes too easily, so those use the MCU (PULPino) profile
with deliberately doomed sweep points (max utilization, the long
router-iteration cap).  Policies are trained once per session — the
artificial corpus and policy iteration dominate the fixture cost.
"""

from __future__ import annotations

import pytest

from repro.bench.generators import design_profile
from repro.dse import train_kill_policy


@pytest.fixture(scope="session")
def mcu_spec():
    return design_profile("MCU")


@pytest.fixture(scope="session")
def mdp_policy():
    return train_kill_policy("mdp", seed=0)


#: two doomed points (max utilization, high target, long router leash)
#: and two healthy ones — a sweep over these exercises both outcomes
DOOMED_SWEEP_POINTS = [
    {"target_clock_ghz": tgt, "synth_effort": 0.2, "utilization": util,
     "aspect_ratio": 1.0, "placer_moves_per_cell": 40,
     "spread_strength": 0.6, "cts_effort": 0.5, "router_effort": effort,
     "router_max_iterations": cap, "opt_passes": 8, "opt_guardband": 0.0}
    for tgt, util, effort, cap in [
        (0.75, 0.85, 0.4, 40),
        (0.8, 0.85, 0.4, 40),
        (0.5, 0.65, 0.8, 20),
        (0.6, 0.65, 0.8, 20),
    ]
]


@pytest.fixture()
def doomed_points():
    return [dict(p) for p in DOOMED_SWEEP_POINTS]
