"""Linear models: exact recovery, regularization, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LinearRegression, PolynomialFeatures, RidgeRegression
from repro.ml.metrics import r2_score


def test_ols_recovers_exact_linear_map():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 3))
    w_true = np.array([2.0, -1.0, 0.5])
    y = X @ w_true + 3.0
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, w_true, atol=1e-8)
    assert model.intercept_ == pytest.approx(3.0, abs=1e-8)


def test_ols_without_intercept():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(40, 2))
    y = X @ np.array([1.5, -2.0])
    model = LinearRegression(fit_intercept=False).fit(X, y)
    assert model.intercept_ == 0.0
    assert np.allclose(model.coef_, [1.5, -2.0], atol=1e-8)


def test_ols_1d_input_promoted():
    x = np.linspace(0, 1, 20)
    y = 2.0 * x + 1.0
    model = LinearRegression().fit(x, y)
    assert model.predict([[0.5]])[0] == pytest.approx(2.0, abs=1e-8)


def test_ridge_shrinks_toward_zero():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(30, 4))
    y = X @ np.array([5.0, -5.0, 2.0, 1.0]) + 0.01 * rng.normal(size=30)
    loose = RidgeRegression(alpha=1e-6).fit(X, y)
    tight = RidgeRegression(alpha=1e3).fit(X, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_ridge_alpha_zero_matches_ols():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 3))
    y = X @ np.array([1.0, 2.0, 3.0]) + 0.5
    ols = LinearRegression().fit(X, y)
    ridge = RidgeRegression(alpha=0.0).fit(X, y)
    assert np.allclose(ols.coef_, ridge.coef_, atol=1e-6)
    assert ols.intercept_ == pytest.approx(ridge.intercept_, abs=1e-6)


def test_ridge_handles_collinear_features():
    rng = np.random.default_rng(4)
    x = rng.normal(size=50)
    X = np.stack([x, x], axis=1)  # perfectly collinear
    y = 2.0 * x
    model = RidgeRegression(alpha=1.0).fit(X, y)
    pred = model.predict(X)
    assert r2_score(y, pred) > 0.95


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        LinearRegression().predict([[1.0]])


def test_feature_count_mismatch_raises():
    model = LinearRegression().fit([[1.0, 2.0]] * 3, [1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        model.predict([[1.0]])


def test_empty_fit_raises():
    with pytest.raises(ValueError):
        LinearRegression().fit(np.empty((0, 2)), np.empty(0))


def test_row_mismatch_raises():
    with pytest.raises(ValueError):
        LinearRegression().fit([[1.0], [2.0]], [1.0])


def test_negative_alpha_rejected():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)


def test_polynomial_features_degree2():
    X = np.array([[2.0, 3.0]])
    out = PolynomialFeatures(degree=2).transform(X)
    # columns: a, b, a^2, ab, b^2
    assert np.allclose(out, [[2.0, 3.0, 4.0, 6.0, 9.0]])


def test_polynomial_degree1_is_identity():
    X = np.array([[1.0, -2.0], [0.5, 4.0]])
    assert np.allclose(PolynomialFeatures(degree=1).transform(X), X)


def test_polynomial_degree_validation():
    with pytest.raises(ValueError):
        PolynomialFeatures(degree=0)


def test_polynomial_plus_linear_fits_quadratic():
    x = np.linspace(-2, 2, 50).reshape(-1, 1)
    y = (3.0 * x**2 - x + 1.0).ravel()
    X_poly = PolynomialFeatures(degree=2).transform(x)
    model = LinearRegression().fit(X_poly, y)
    assert r2_score(y, model.predict(X_poly)) > 0.9999


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=40),
    slope=st.floats(min_value=-10, max_value=10, allow_nan=False),
    intercept=st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_property_ols_exact_on_noiseless_line(n, slope, intercept):
    """OLS must recover any noiseless affine map exactly."""
    x = np.linspace(0.0, 1.0, n)
    y = slope * x + intercept
    model = LinearRegression().fit(x, y)
    assert model.coef_[0] == pytest.approx(slope, abs=1e-6)
    assert model.intercept_ == pytest.approx(intercept, abs=1e-6)
