"""Logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy_score


def test_separable_data_classified():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    model = LogisticRegression().fit(X, y)
    assert accuracy_score(y, model.predict(X)) > 0.97


def test_probabilities_bounded_and_monotone():
    x = np.linspace(-3, 3, 100).reshape(-1, 1)
    y = (x.ravel() > 0).astype(int)
    model = LogisticRegression().fit(x, y)
    p = model.predict_proba(x)
    assert p.min() >= 0.0 and p.max() <= 1.0
    assert (np.diff(p) >= -1e-12).all()  # monotone in the feature


def test_coefficient_sign_matches_effect():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 2))
    y = (2 * X[:, 0] - 3 * X[:, 1] > 0).astype(int)
    model = LogisticRegression().fit(X, y)
    assert model.coef_[0] > 0
    assert model.coef_[1] < 0


def test_regularization_shrinks_weights():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(100, 2))
    y = (X[:, 0] > 0).astype(int)
    loose = LogisticRegression(alpha=1e-6).fit(X, y)
    tight = LogisticRegression(alpha=100.0).fit(X, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_single_class_degenerates_gracefully():
    X = np.arange(10).reshape(-1, 1).astype(float)
    model = LogisticRegression().fit(X, np.ones(10))
    assert (model.predict_proba(X) > 0.99).all()
    model0 = LogisticRegression().fit(X, np.zeros(10))
    assert (model0.predict_proba(X) < 0.01).all()


def test_validation():
    with pytest.raises(ValueError):
        LogisticRegression(alpha=-1.0)
    with pytest.raises(ValueError):
        LogisticRegression().fit([[1.0]], [2.0])  # non-binary label
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.empty((0, 1)), np.empty(0))
    with pytest.raises(RuntimeError):
        LogisticRegression().predict([[1.0]])
    model = LogisticRegression().fit([[0.0], [1.0]], [0, 1])
    with pytest.raises(ValueError):
        model.predict([[1.0, 2.0]])
