"""Hidden Markov models: probability invariants, learning, decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.hmm import DiscreteHMM


def _rowstochastic(mat):
    return np.allclose(np.asarray(mat).sum(axis=-1), 1.0)


def test_initial_parameters_are_stochastic():
    hmm = DiscreteHMM(3, 4, random_state=0)
    assert _rowstochastic(hmm.startprob_[None, :])
    assert _rowstochastic(hmm.transmat_)
    assert _rowstochastic(hmm.emissionprob_)


def test_fit_preserves_stochasticity():
    rng = np.random.default_rng(0)
    seqs = [rng.integers(0, 4, size=20).tolist() for _ in range(5)]
    hmm = DiscreteHMM(2, 4, random_state=1).fit(seqs)
    assert _rowstochastic(hmm.startprob_[None, :])
    assert _rowstochastic(hmm.transmat_)
    assert _rowstochastic(hmm.emissionprob_)


def test_fit_increases_likelihood():
    rng = np.random.default_rng(2)
    # structured data: long runs of the same symbol
    seqs = []
    for _ in range(6):
        seq = []
        for sym in rng.integers(0, 3, size=4):
            seq += [int(sym)] * 5
        seqs.append(seq)
    before = DiscreteHMM(3, 3, n_iter=0, random_state=3)
    ll_before = sum(before.score(s) for s in seqs)
    after = DiscreteHMM(3, 3, n_iter=40, random_state=3).fit(seqs)
    ll_after = sum(after.score(s) for s in seqs)
    assert ll_after > ll_before


def test_score_is_log_probability():
    hmm = DiscreteHMM(2, 2, random_state=0)
    assert hmm.score([0, 1, 0]) < 0.0  # log of probability < 1


def test_score_sums_over_length1_alphabet():
    """With one symbol every sequence has probability 1."""
    hmm = DiscreteHMM(2, 1, random_state=0)
    assert hmm.score([0, 0, 0]) == pytest.approx(0.0, abs=1e-9)


def test_viterbi_path_length_and_range():
    hmm = DiscreteHMM(3, 4, random_state=1)
    path = hmm.viterbi([0, 1, 2, 3, 0])
    assert path.shape == (5,)
    assert path.min() >= 0 and path.max() < 3


def test_viterbi_follows_deterministic_emissions():
    hmm = DiscreteHMM(2, 2, random_state=0)
    hmm.startprob_ = np.array([0.5, 0.5])
    hmm.transmat_ = np.array([[0.9, 0.1], [0.1, 0.9]])
    hmm.emissionprob_ = np.array([[1.0, 0.0], [0.0, 1.0]])
    path = hmm.viterbi([0, 0, 1, 1])
    assert path.tolist() == [0, 0, 1, 1]


def test_out_of_range_symbol_rejected():
    hmm = DiscreteHMM(2, 3, random_state=0)
    with pytest.raises(ValueError):
        hmm.score([0, 3])
    with pytest.raises(ValueError):
        hmm.score([-1])


def test_empty_sequence_rejected():
    hmm = DiscreteHMM(2, 3, random_state=0)
    with pytest.raises(ValueError):
        hmm.score([])
    with pytest.raises(ValueError):
        hmm.fit([])


def test_classification_by_likelihood_ratio():
    """Two HMMs trained on different dynamics separate new sequences —
    the mechanism behind the doomed-run HMM predictor."""
    rng = np.random.default_rng(4)
    rising = [sorted(rng.integers(0, 5, size=12).tolist()) for _ in range(8)]
    falling = [sorted(rng.integers(0, 5, size=12).tolist(), reverse=True) for _ in range(8)]
    m_rise = DiscreteHMM(2, 5, random_state=5).fit(rising)
    m_fall = DiscreteHMM(2, 5, random_state=6).fit(falling)
    probe = sorted(rng.integers(0, 5, size=12).tolist())
    assert m_rise.score(probe) > m_fall.score(probe)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_forward_scales_positive(seed):
    """The scaled forward pass never produces zero/negative scale
    factors, so scores are always finite."""
    rng = np.random.default_rng(seed)
    hmm = DiscreteHMM(2, 3, random_state=seed)
    seq = rng.integers(0, 3, size=15).tolist()
    assert np.isfinite(hmm.score(seq))
