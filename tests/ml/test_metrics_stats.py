"""Evaluation metrics, scalers, model selection, and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.cluster import KMeans
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.linear import LinearRegression
from repro.ml.scaling import MinMaxScaler, StandardScaler
from repro.ml.stats import (
    chi_square_normality,
    excess_kurtosis,
    fit_normal,
    jarque_bera,
    skewness,
)


# ---------------------------------------------------------------- metrics
def test_mae_mse_rmse_relations():
    y = np.array([1.0, 2.0, 3.0])
    p = np.array([1.0, 2.0, 5.0])
    assert mean_absolute_error(y, p) == pytest.approx(2.0 / 3.0)
    assert mean_squared_error(y, p) == pytest.approx(4.0 / 3.0)
    assert root_mean_squared_error(y, p) == pytest.approx(np.sqrt(4.0 / 3.0))


def test_r2_perfect_and_mean_baseline():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == 1.0
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_r2_constant_target_convention():
    y = np.full(4, 5.0)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1.0) == 0.0


def test_accuracy_and_confusion():
    y = ["a", "a", "b", "b"]
    p = ["a", "b", "b", "b"]
    assert accuracy_score(y, p) == 0.75
    mat = confusion_matrix(y, p, labels=["a", "b"])
    assert mat.tolist() == [[1, 1], [0, 2]]


def test_metrics_reject_mismatched_or_empty():
    with pytest.raises(ValueError):
        mean_absolute_error([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        mean_squared_error([], [])


# ---------------------------------------------------------------- scalers
def test_standard_scaler_roundtrip():
    rng = np.random.default_rng(0)
    X = rng.normal(5.0, 3.0, size=(50, 2))
    scaler = StandardScaler()
    Z = scaler.fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)
    assert np.allclose(scaler.inverse_transform(Z), X)


def test_standard_scaler_constant_column():
    X = np.array([[1.0, 5.0], [1.0, 7.0]])
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z[:, 0], 0.0)


def test_minmax_scaler_range():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(30, 3))
    Z = MinMaxScaler().fit_transform(X)
    assert Z.min() >= 0.0 and Z.max() <= 1.0
    assert np.allclose(Z.min(axis=0), 0.0)
    assert np.allclose(Z.max(axis=0), 1.0)


def test_scaler_unfitted_raises():
    with pytest.raises(RuntimeError):
        StandardScaler().transform([[1.0]])
    with pytest.raises(RuntimeError):
        MinMaxScaler().transform([[1.0]])


# ------------------------------------------------------- model selection
def test_train_test_split_sizes_and_disjoint():
    X = np.arange(20).reshape(-1, 1)
    y = np.arange(20)
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
    assert len(X_te) == 5 and len(X_tr) == 15
    assert set(y_tr.tolist()).isdisjoint(y_te.tolist())


def test_train_test_split_validation():
    with pytest.raises(ValueError):
        train_test_split([1], [1])
    with pytest.raises(ValueError):
        train_test_split([[1], [2]], [1, 2], test_size=1.5)


def test_kfold_covers_everything_once():
    X = np.arange(10)
    seen = []
    for _, test_idx in KFold(5, random_state=0).split(X):
        seen += test_idx.tolist()
    assert sorted(seen) == list(range(10))


def test_kfold_validation():
    with pytest.raises(ValueError):
        KFold(1)
    with pytest.raises(ValueError):
        list(KFold(5).split(np.arange(3)))


def test_cross_val_score_linear():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(60, 2))
    y = X @ np.array([1.0, -2.0]) + 0.01 * rng.normal(size=60)
    scores = cross_val_score(LinearRegression, X, y, r2_score, n_splits=4, random_state=0)
    assert scores.shape == (4,)
    assert scores.min() > 0.99


# ------------------------------------------------------------- statistics
def test_skewness_and_kurtosis_of_normal_sample():
    rng = np.random.default_rng(3)
    x = rng.normal(size=5000)
    assert abs(skewness(x)) < 0.1
    assert abs(excess_kurtosis(x)) < 0.2


def test_jarque_bera_accepts_normal_rejects_uniform():
    rng = np.random.default_rng(4)
    _, p_norm = jarque_bera(rng.normal(size=800))
    _, p_unif = jarque_bera(rng.uniform(size=800))
    assert p_norm > 0.01
    assert p_unif < 0.01


def test_fit_normal_fields():
    rng = np.random.default_rng(5)
    fit = fit_normal(rng.normal(10.0, 2.0, size=500))
    assert fit.mean == pytest.approx(10.0, abs=0.3)
    assert fit.std == pytest.approx(2.0, abs=0.3)
    assert fit.looks_gaussian


def test_chi_square_normality_behaviour():
    rng = np.random.default_rng(6)
    _, p_norm = chi_square_normality(rng.normal(size=500))
    _, p_exp = chi_square_normality(rng.exponential(size=500))
    assert p_norm > 0.01
    assert p_exp < 0.01


def test_stats_input_validation():
    with pytest.raises(ValueError):
        skewness([1.0, 2.0])
    with pytest.raises(ValueError):
        jarque_bera([1.0] * 5)
    with pytest.raises(ValueError):
        chi_square_normality([1.0] * 10, n_bins=8)


# ---------------------------------------------------------------- kmeans
def test_kmeans_recovers_separated_clusters():
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(i * 20, 1.0, size=(30, 2)) for i in range(3)])
    km = KMeans(n_clusters=3, random_state=0).fit(X)
    # each true cluster should map to a single predicted label
    labels = km.predict(X)
    for i in range(3):
        block = labels[i * 30 : (i + 1) * 30]
        assert len(set(block.tolist())) == 1


def test_kmeans_inertia_decreases_with_k():
    rng = np.random.default_rng(8)
    X = rng.normal(size=(100, 2))
    inertias = [
        KMeans(n_clusters=k, random_state=0).fit(X).inertia_ for k in (1, 2, 4, 8)
    ]
    assert all(a >= b for a, b in zip(inertias, inertias[1:]))


def test_kmeans_validation():
    with pytest.raises(ValueError):
        KMeans(n_clusters=0)
    with pytest.raises(ValueError):
        KMeans(n_clusters=5).fit(np.zeros((3, 2)))
    with pytest.raises(RuntimeError):
        KMeans().predict([[1.0, 2.0]])


@settings(max_examples=15, deadline=None)
@given(
    shift=st.floats(min_value=-100, max_value=100, allow_nan=False),
    scale=st.floats(min_value=0.1, max_value=50, allow_nan=False),
)
def test_property_r2_invariant_under_affine_shift(shift, scale):
    """R^2 of a perfect-up-to-affine prediction is invariant when both
    vectors undergo the same affine map."""
    rng = np.random.default_rng(0)
    y = rng.normal(size=30)
    p = y + 0.1 * rng.normal(size=30)
    base = r2_score(y, p)
    mapped = r2_score(y * scale + shift, p * scale + shift)
    assert mapped == pytest.approx(base, abs=1e-9)
