"""Decision trees: splits, purity, depth control, probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import accuracy_score, r2_score
from repro.ml.trees import DecisionTreeClassifier, DecisionTreeRegressor


def test_regressor_fits_step_function_exactly():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([1.0, 1.0, 5.0, 5.0])
    tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
    assert np.allclose(tree.predict(X), y)


def test_regressor_constant_target_single_leaf():
    X = np.arange(10).reshape(-1, 1).astype(float)
    y = np.full(10, 7.0)
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.depth_ == 0
    assert np.allclose(tree.predict(X), 7.0)


def test_max_depth_respected():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)
    tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
    assert tree.depth_ <= 3


def test_min_samples_leaf_respected():
    X = np.arange(10).reshape(-1, 1).astype(float)
    y = np.arange(10).astype(float)
    tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=4).fit(X, y)

    # collect leaf sample counts by prediction: every leaf mean must
    # average at least 4 original samples
    preds = tree.predict(X)
    _, counts = np.unique(preds, return_counts=True)
    assert counts.min() >= 4


def test_classifier_separable_data():
    X = np.array([[0.0], [0.1], [0.9], [1.0]])
    y = np.array(["a", "a", "b", "b"])
    clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
    assert accuracy_score(y, clf.predict(X)) == 1.0


def test_classifier_probabilities_sum_to_one():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(100, 2))
    y = (X[:, 0] > 0).astype(int)
    clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
    proba = clf.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert proba.min() >= 0.0


def test_classifier_string_labels_roundtrip():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array(["lo", "lo", "hi"])
    clf = DecisionTreeClassifier().fit(X, y)
    assert set(clf.predict(X)) <= {"lo", "hi"}


def test_unfitted_predict_raises():
    with pytest.raises(RuntimeError):
        DecisionTreeRegressor().predict([[1.0]])


def test_feature_mismatch_raises():
    tree = DecisionTreeRegressor().fit([[1.0, 2.0]] * 4, [1, 2, 3, 4])
    with pytest.raises(ValueError):
        tree.predict([[1.0]])


def test_bad_hyperparameters_rejected():
    with pytest.raises(ValueError):
        DecisionTreeRegressor(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_split=1)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0)


def test_regressor_improves_with_depth():
    rng = np.random.default_rng(2)
    X = rng.uniform(-3, 3, size=(300, 1))
    y = np.sin(X).ravel()
    shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
    assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_predictions_within_target_range(seed):
    """A regression tree predicts leaf means, so predictions are always
    inside [min(y), max(y)]."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 2))
    y = rng.normal(size=50)
    tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
    preds = tree.predict(rng.normal(size=(50, 2)))
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9
