"""Finite MDPs: solver correctness and agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.mdp import FiniteMDP, policy_iteration, value_iteration


def _two_state_mdp(gamma=0.9):
    """State 0: action 1 pays 1 and moves to absorbing state 1."""
    T = np.zeros((2, 2, 2))
    T[0, 0, 0] = 1.0  # action 0 in state 0: stay
    T[0, 1, 1] = 1.0
    T[1, 0, 1] = 1.0  # action 1 in state 0: go to 1, reward 1
    T[1, 1, 1] = 1.0
    R = np.array([[0.0, 0.0], [1.0, 0.0]])
    return FiniteMDP(T, R, gamma=gamma)


def test_value_iteration_optimal_action():
    _, policy = value_iteration(_two_state_mdp())
    assert policy[0] == 1


def test_policy_iteration_optimal_action():
    _, policy = policy_iteration(_two_state_mdp())
    assert policy[0] == 1


def test_solvers_agree():
    mdp = _two_state_mdp()
    v1, p1 = value_iteration(mdp, tol=1e-10)
    v2, p2 = policy_iteration(mdp)
    assert np.array_equal(p1, p2)
    assert np.allclose(v1, v2, atol=1e-6)


def test_values_match_geometric_series():
    """Self-loop with reward 1 has value 1/(1-gamma)."""
    T = np.ones((1, 1, 1))
    R = np.ones((1, 1))
    mdp = FiniteMDP(T, R, gamma=0.5)
    v, _ = value_iteration(mdp, tol=1e-12)
    assert v[0] == pytest.approx(2.0, abs=1e-6)


def test_gamma_zero_is_myopic():
    """With gamma=0 the policy maximizes immediate reward only."""
    T = np.zeros((2, 2, 2))
    T[:, :, 1] = 1.0  # everything moves to state 1
    R = np.array([[0.5, 0.0], [0.2, 0.0]])
    mdp = FiniteMDP(T, R, gamma=0.0)
    _, policy = value_iteration(mdp)
    assert policy[0] == 0


def test_transition_validation():
    T = np.zeros((1, 2, 2))
    T[0, 0, 0] = 0.5  # rows don't sum to 1
    T[0, 1, 1] = 1.0
    with pytest.raises(ValueError):
        FiniteMDP(T, np.zeros((1, 2)))


def test_reward_shape_validation():
    T = np.zeros((1, 2, 2))
    T[0, 0, 0] = 1.0
    T[0, 1, 1] = 1.0
    with pytest.raises(ValueError):
        FiniteMDP(T, np.zeros((2, 2)))


def test_gamma_validation():
    T = np.ones((1, 1, 1))
    with pytest.raises(ValueError):
        FiniteMDP(T, np.zeros((1, 1)), gamma=1.0)
    with pytest.raises(ValueError):
        FiniteMDP(T, np.zeros((1, 1)), gamma=-0.1)


def test_q_values_shape():
    mdp = _two_state_mdp()
    q = mdp.q_values(np.zeros(2))
    assert q.shape == (2, 2)
    assert q[1, 0] == pytest.approx(1.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_random_mdps_solvers_agree(seed):
    """On random MDPs, policy iteration and value iteration find
    policies of equal value (the optimal value is unique even when the
    argmax policy is not)."""
    rng = np.random.default_rng(seed)
    n_s, n_a = 4, 3
    T = rng.random((n_a, n_s, n_s))
    T = T / T.sum(axis=2, keepdims=True)
    R = rng.normal(size=(n_a, n_s))
    mdp = FiniteMDP(T, R, gamma=0.9)
    v1, _ = value_iteration(mdp, tol=1e-10)
    v2, _ = policy_iteration(mdp)
    assert np.allclose(v1, v2, atol=1e-5)
