"""Ensembles: forests and gradient boosting."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.metrics import accuracy_score, r2_score


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = X[:, 0] * 2 - X[:, 1] + 0.3 * X[:, 2] * X[:, 3] + 0.05 * rng.normal(size=200)
    return X, y


def test_forest_regressor_fits(regression_data):
    X, y = regression_data
    model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.8


def test_forest_is_deterministic_given_seed(regression_data):
    X, y = regression_data
    a = RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X)
    b = RandomForestRegressor(n_estimators=10, random_state=42).fit(X, y).predict(X)
    assert np.array_equal(a, b)


def test_forest_seed_changes_predictions(regression_data):
    X, y = regression_data
    a = RandomForestRegressor(n_estimators=5, random_state=1).fit(X, y).predict(X)
    b = RandomForestRegressor(n_estimators=5, random_state=2).fit(X, y).predict(X)
    assert not np.array_equal(a, b)


def test_forest_classifier_accuracy():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    clf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
    assert accuracy_score(y, clf.predict(X)) > 0.95


def test_forest_classifier_proba_normalized():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(100, 2))
    y = (X[:, 0] > 0).astype(int)
    clf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
    proba = clf.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_forest_max_features_options(regression_data):
    X, y = regression_data
    for mf in (None, "sqrt", "third", 2):
        model = RandomForestRegressor(n_estimators=4, max_features=mf, random_state=0)
        model.fit(X, y)
        assert len(model.estimators_) == 4
    with pytest.raises(ValueError):
        RandomForestRegressor(max_features="bogus").fit(X, y)


def test_forest_validation():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict([[1.0]])


def test_gbm_beats_single_stage(regression_data):
    X, y = regression_data
    one = GradientBoostingRegressor(n_estimators=1, random_state=0).fit(X, y)
    many = GradientBoostingRegressor(n_estimators=80, random_state=0).fit(X, y)
    assert r2_score(y, many.predict(X)) > r2_score(y, one.predict(X))


def test_gbm_staged_predictions_improve(regression_data):
    X, y = regression_data
    model = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(X, y)
    scores = [r2_score(y, pred) for pred in model.staged_predict(X)]
    assert scores[-1] > scores[0]
    assert len(scores) == len(model.estimators_)


def test_gbm_learning_rate_bounds():
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=1.5)


def test_gbm_constant_target_early_stops():
    X = np.arange(20).reshape(-1, 1).astype(float)
    y = np.full(20, 3.0)
    model = GradientBoostingRegressor(n_estimators=50, random_state=0).fit(X, y)
    assert np.allclose(model.predict(X), 3.0)
    assert len(model.estimators_) < 50  # residuals hit zero immediately


def test_gbm_unfitted_raises():
    with pytest.raises(RuntimeError):
        GradientBoostingRegressor().predict([[1.0]])
    with pytest.raises(RuntimeError):
        list(GradientBoostingRegressor().staged_predict([[1.0]]))
