"""Examples stay runnable: import every script, execute the fast ones."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_exists():
    expected = {
        "quickstart", "mab_flow_tuning", "doomed_run_guard",
        "signoff_correlation", "metrics_campaign", "design_cost_explorer",
        "robot_engineers", "flow_outcome_prediction", "partitioned_design",
        "no_human_in_the_loop",
    }
    assert expected <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks main()"
    assert module.__doc__, f"{name} lacks a module docstring"


def test_quickstart_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "0.5"])
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "final QoR" in out
    assert "verdict" in out


def test_design_cost_explorer_runs(capsys):
    _load("design_cost_explorer").main()
    out = capsys.readouterr().out
    assert "footnote-1 anchors" in out
    assert "Design Capability Gap" in out
