"""Shared fixtures: a library, a small design, and its placed/routed views.

Session-scoped where construction is expensive; tests must not mutate
shared fixtures (mutating tests build their own objects).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.placement import QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.synthesis import DesignSpec, synthesize


@pytest.fixture(scope="session")
def library():
    return make_default_library()


@pytest.fixture(scope="session")
def small_spec():
    return DesignSpec(
        name="tiny",
        n_gates=120,
        n_flops=16,
        n_inputs=8,
        n_outputs=8,
        depth=10,
        locality=0.8,
    )


@pytest.fixture(scope="session")
def small_netlist(library, small_spec):
    return synthesize(small_spec, library, effort=0.5, seed=7)


@pytest.fixture(scope="session")
def small_floorplan(small_netlist):
    return make_floorplan(small_netlist, utilization=0.7)


@pytest.fixture(scope="session")
def small_placement(small_netlist, small_floorplan):
    return QuadraticPlacer().place(small_netlist, small_floorplan, seed=3)


@pytest.fixture(scope="session")
def small_congestion(small_placement):
    return GlobalRouter().route(small_placement, seed=4).congestion_map()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
