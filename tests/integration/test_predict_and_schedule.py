"""Integration: rope-predicted runtimes drive project scheduling.

Paper footnote 4 / ref [1]: schedule and resource optimization
"supported by accurate estimates" cuts design cost.  The rope
predictors supply the estimates; the scheduler consumes them.
"""

import numpy as np
import pytest

from repro.bench.generators import artificial_profile
from repro.core.orchestration.resources import (
    ResourcePool,
    compare_policies,
    jobs_from_flow_estimates,
    schedule_jobs,
)
from repro.core.prediction import RopePredictor, build_rope_dataset


@pytest.fixture(scope="module")
def rope_data():
    specs = [artificial_profile(i) for i in range(2)]
    return build_rope_dataset(specs=specs, n_runs=24, seed=77)


def test_runtime_is_predictable_early(rope_data):
    """A span-1 (post-synthesis) model predicts total flow runtime."""
    train, test = rope_data.split(0.7, seed=0)

    # target: total runtime proxy — derive from results
    import copy

    class RuntimeRope(RopePredictor):
        def fit(self, dataset):
            X = dataset.features(self.span)
            y = np.array([r.runtime_proxy for r in dataset.results])
            from repro.ml.forest import RandomForestRegressor

            self._model = RandomForestRegressor(
                n_estimators=30, max_depth=6, random_state=0
            )
            self._model.fit(X, y)
            return self

    predictor = RuntimeRope(span=1, target="area", seed=0).fit(train)
    predicted = predictor.predict(test)
    actual = np.array([r.runtime_proxy for r in test.results])
    # correlation is what scheduling needs (ordering, not absolutes)
    corr = float(np.corrcoef(predicted, actual)[0, 1])
    assert corr > 0.3


def test_estimates_feed_scheduler(rope_data):
    """Predicted runtimes produce a valid, better-than-random schedule."""
    estimates = {
        f"run{i}": r.runtime_proxy * (1.0 + 0.1 * ((i % 3) - 1))  # noisy estimates
        for i, r in enumerate(rope_data.results)
    }
    jobs = jobs_from_flow_estimates(estimates)
    pool = ResourcePool(machines=4, licenses={"pnr": 3})
    results = compare_policies(jobs, pool, seed=1)
    # LPT with (even noisy) estimates must not lose to random dispatch
    assert results["lpt"] <= results["random"] * 1.05
    schedule = schedule_jobs(jobs, pool, "lpt")
    assert len(schedule.entries) == len(jobs)
    assert 0.0 < schedule.utilization(pool) <= 1.0
