"""Cross-package integration: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.bench import RouterLogCorpus, pulpino_profile
from repro.core.bandit import (
    BatchBanditScheduler,
    FlowArmEnvironment,
    ThompsonSampling,
)
from repro.core.doomed import MDPCardLearner, evaluate_policy, make_stop_callback
from repro.core.correlation import MiscorrelationModel, build_correlation_dataset
from repro.eda.flow import FlowOptions, SPRFlow
from repro.eda.synthesis import DesignSpec
from repro.metrics import DataMiner, InstrumentedFlow, MetricsServer


@pytest.fixture(scope="module")
def tiny_spec():
    return DesignSpec("itiny", n_gates=100, n_flops=12, n_inputs=8, n_outputs=8,
                      depth=8, locality=0.8)


def test_mab_over_real_flow(tiny_spec):
    """Sec 3.1 end to end: TS scheduling actual flow runs.

    The aggressive arms fail; TS should concentrate pulls on feasible
    frequencies and collect nonzero reward.
    """
    env = FlowArmEnvironment(
        tiny_spec,
        target_frequencies=[0.5, 1.0, 4.0, 6.0],
        seed=0,
    )
    policy = ThompsonSampling(env.n_arms, seed=1)
    result = BatchBanditScheduler(n_iterations=6, n_concurrent=2).run(policy, env)
    assert result.total_reward > 0
    assert len(env.history) == 12
    # the hopeless 6GHz arm must not dominate late pulls
    late = [r.arm for r in result.records if r.iteration >= 3]
    assert late.count(3) < len(late)
    assert env.describe_arm(0).endswith("GHz")


def test_doomed_predictor_prunes_real_flow(tiny_spec):
    """Sec 3.3 end to end: card trained on logs prunes a doomed flow."""
    train = RouterLogCorpus.artificial(n=150, seed=3)
    card = MDPCardLearner().fit(train)
    callback = make_stop_callback(card, consecutive=2)
    # congested setup: the detailed route will be doomed
    doomed_options = FlowOptions(utilization=0.95, router_tracks_per_um=7.0)
    unpruned = SPRFlow().run(tiny_spec, doomed_options, seed=4)
    pruned = SPRFlow(stop_callback=callback).run(tiny_spec, doomed_options, seed=4)
    droute_unpruned = [l for l in unpruned.logs if l.step == "droute"][0]
    droute_pruned = [l for l in pruned.logs if l.step == "droute"][0]
    if not unpruned.routed:  # run was indeed doomed
        assert droute_pruned.metrics["iterations"] <= droute_unpruned.metrics["iterations"]


def test_correlation_to_guardband_pipeline():
    """Sec 3.2 end to end: dataset -> model -> reduced guardband."""
    from repro.core.correlation import guardband_for

    ds = build_correlation_dataset(n_designs=3, seed=5)
    train, test = ds.split(0.7, seed=0)
    model = MiscorrelationModel(kind="ridge").fit(train)
    raw = guardband_for(test.cheap_slack, test.golden_slack)
    ml = guardband_for(model.predict_golden(test), test.golden_slack)
    assert ml < raw


def test_metrics_loop_on_flow(tiny_spec):
    """Sec 4 end to end: instrument, collect, mine, re-run."""
    server = MetricsServer()
    flow = InstrumentedFlow(server)
    rng = np.random.default_rng(6)
    for i in range(8):
        options = FlowOptions(
            target_clock_ghz=float(rng.uniform(0.5, 1.5)),
            utilization=float(rng.uniform(0.55, 0.85)),
        )
        flow.run(tiny_spec, options, seed=i)
    rec = DataMiner(server, seed=0).recommend_options("flow.area")
    # materialize the recommendation and run it
    materialized = FlowOptions(
        target_clock_ghz=float(np.clip(rec.options.get("flow.target_ghz", 0.8), 0.1, 2.0)),
        utilization=float(np.clip(rec.options.get("option.utilization", 0.7), 0.4, 0.9)),
    )
    result = flow.run(tiny_spec, materialized, seed=99)
    assert result.area > 0
    assert len(server.runs()) == 9


def test_pulpino_flow_reaches_signoff():
    """The headline testcase: PULPino profile through the whole flow."""
    spec = pulpino_profile(scale=0.5)
    result = SPRFlow().run(spec, FlowOptions(target_clock_ghz=0.5), seed=0)
    assert result.routed
    assert result.timing_met
    assert [log.step for log in result.logs][-1] == "signoff"


def test_doomed_table_shape_small():
    """The Sec 3.3 table's qualitative shape on small corpora."""
    train = RouterLogCorpus.artificial(n=200, seed=7)
    test = RouterLogCorpus.cpu_floorplans(n=150, seed=8, n_base_maps=2)
    card = MDPCardLearner().fit(train)
    e1 = evaluate_policy(card, test, 1)
    e2 = evaluate_policy(card, test, 2)
    e3 = evaluate_policy(card, test, 3)
    # requiring more consecutive STOPs monotonically removes Type-1
    # (premature-stop) errors; the full-size corpora in the benchmark
    # reproduce the total-error column too
    assert e3.type1_errors <= e2.type1_errors <= e1.type1_errors
    assert e2.error_rate <= e1.error_rate + 0.02
