"""Doomed-run prediction: binning, strategy card, MDP learning, errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import RouterLog, RouterLogCorpus
from repro.core.doomed import (
    GO,
    STOP,
    HMMDoomPredictor,
    MDPCardLearner,
    StateSpace,
    StrategyCard,
    bin_slope,
    bin_violations,
    evaluate_policy,
    make_stop_callback,
)
from repro.core.doomed.card import apply_fill_in_rules
from repro.core.doomed.evaluate import stop_iteration


# ------------------------------------------------------------------ binning
def test_violation_bins_log_scale():
    assert bin_violations(0) == 0
    assert bin_violations(1) == 1
    assert bin_violations(2) == 2
    assert bin_violations(3) == 2
    assert bin_violations(1000) == 10
    assert bin_violations(10**9) == 18  # capped


def test_violation_bin_monotone():
    values = [0, 1, 5, 20, 100, 500, 3000, 50_000]
    bins = [bin_violations(v) for v in values]
    assert bins == sorted(bins)


def test_negative_violations_rejected():
    with pytest.raises(ValueError):
        bin_violations(-1)


def test_slope_bins_signed():
    assert bin_slope(0) == 0
    assert bin_slope(10) > 0
    assert bin_slope(-10) < 0
    assert bin_slope(-(2**20)) == -12  # capped down
    assert bin_slope(2**20) == 4  # capped up


def test_slope_bin_antisymmetric_small():
    for d in (1, 5, 100):
        assert bin_slope(d) == -bin_slope(-d) or bin_slope(d) <= 4


def test_state_space_roundtrip():
    space = StateSpace()
    for vb in (0, 5, 18):
        for sb in (-12, 0, 4):
            state = vb * space.n_slope_bins + (sb + space.max_down)
            assert space.unpack(state) == (vb, sb)
    with pytest.raises(IndexError):
        space.unpack(space.n_states)


def test_trajectory_states_length():
    space = StateSpace()
    drvs = [1000, 800, 600, 500]
    states = space.trajectory_states(drvs)
    assert len(states) == 3
    assert space.trajectory_states([5]) == []


# ------------------------------------------------------------ strategy card
def _empty_card(space=None):
    space = space or StateSpace()
    return StrategyCard(
        space,
        np.zeros(space.n_states, dtype=int),
        np.zeros(space.n_states, dtype=bool),
    )


def test_card_shape_validation():
    space = StateSpace()
    with pytest.raises(ValueError):
        StrategyCard(space, np.zeros(3), np.zeros(space.n_states, dtype=bool))
    bad = np.zeros(space.n_states, dtype=int)
    bad[0] = 7
    with pytest.raises(ValueError):
        StrategyCard(space, bad, np.zeros(space.n_states, dtype=bool))


def test_fill_in_rules_match_footnote5():
    card = apply_fill_in_rules(_empty_card())
    space = card.space
    grid = card.as_grid()
    # rule (iii): very large violations -> STOP regardless of slope
    assert (grid[15, :] == STOP).all()
    # rule (i): large violations, positive slope -> STOP
    vb, sb = 10, 2
    assert grid[vb, sb + space.max_down] == STOP
    # rule (iv): small violations, falling -> GO
    assert grid[2, -5 + space.max_down] == GO
    # rule (ii): small violations, large positive slope -> STOP
    assert grid[2, 3 + space.max_down] == STOP


def test_fill_in_preserves_visited_states():
    space = StateSpace()
    actions = np.zeros(space.n_states, dtype=int)
    visited = np.zeros(space.n_states, dtype=bool)
    # mark a "very large violations" state as visited GO
    state = space.state_of(10**6, -5)
    visited[state] = True
    card = apply_fill_in_rules(StrategyCard(space, actions, visited))
    assert card.actions[state] == GO  # kept despite rule (iii)


def test_card_action_lookup():
    card = apply_fill_in_rules(_empty_card())
    assert card.action(10**6, 100) == STOP
    assert card.action(5, -3) == GO
    counts = card.counts()
    assert counts["go"] + counts["stop"] == card.space.n_states


# ------------------------------------------------------------- MDP learning
@pytest.fixture(scope="module")
def corpora():
    train = RouterLogCorpus.artificial(n=250, seed=5)
    test = RouterLogCorpus.cpu_floorplans(n=200, seed=6, n_base_maps=3)
    return train, test


@pytest.fixture(scope="module")
def card(corpora):
    train, _ = corpora
    return MDPCardLearner().fit(train)


def test_learner_produces_mixed_card(card):
    counts = card.counts()
    assert counts["go"] > 0
    assert counts["stop"] > 0
    assert counts["visited"] > 10


def test_card_paper_shape(card):
    """Fig 10: STOP in the very-high-DRV right half, GO at low DRV, GO at
    moderately-large DRV with negative slope."""
    space = card.space
    grid = card.as_grid()
    # very large violations: overwhelmingly STOP
    high = grid[14:, :]
    assert (high == STOP).mean() > 0.8
    # low violations, falling: overwhelmingly GO
    low = grid[1:5, : space.max_down]
    assert (low == GO).mean() > 0.6
    # moderately large violations with clearly negative slope: mostly GO
    mid = grid[6:9, 2:space.max_down - 2]
    assert (mid == GO).mean() > 0.5


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        MDPCardLearner().fit([])


def test_evaluation_error_decreases_with_consecutive_stops(card, corpora):
    _, test = corpora
    e1 = evaluate_policy(card, test, 1)
    e2 = evaluate_policy(card, test, 2)
    e3 = evaluate_policy(card, test, 3)
    assert e1.type1_errors >= e2.type1_errors >= e3.type1_errors
    assert e3.error_rate <= e1.error_rate
    assert e3.error_rate < 0.15  # single digits, like the paper's 4.2%


def test_evaluation_saves_iterations(card, corpora):
    _, test = corpora
    ev = evaluate_policy(card, test, 2)
    if ev.correct_stops:
        assert ev.iterations_saved > 0
    assert ev.total_errors == ev.type1_errors + ev.type2_errors
    assert "total error" in ev.summary_row()


def test_stop_iteration_semantics():
    space = StateSpace()
    actions = np.full(space.n_states, GO, dtype=int)
    # STOP whenever violations are large
    for state in range(space.n_states):
        vb, _ = space.unpack(state)
        if vb >= 10:
            actions[state] = STOP
    card = StrategyCard(space, actions, np.ones(space.n_states, dtype=bool))
    rising = [100, 500, 50_000, 500_000]  # bins 8, 9, 16, 19: STOP from t=2
    assert stop_iteration(card, rising, consecutive=1) == 2
    assert stop_iteration(card, rising, consecutive=2) == 3
    falling = [500, 100, 20, 0]
    assert stop_iteration(card, falling, consecutive=1) is None
    with pytest.raises(ValueError):
        stop_iteration(card, rising, consecutive=0)


def test_make_stop_callback(card):
    callback = make_stop_callback(card, consecutive=2)
    assert callback([50, 10, 2]) is False
    assert callback([10_000, 80_000, 300_000, 900_000]) in (True, False)
    doomed_history = [10**5, 10**6, 10**7, 10**8]
    assert callback(doomed_history) is True


def test_live_pruning_in_router(card):
    """The card wired into the real router stops a doomed run early."""
    from repro.eda.routing import DetailedRouter

    cong = np.full((16, 16), 1.4)
    callback = make_stop_callback(card, consecutive=2)
    result = DetailedRouter(max_iterations=20).route(cong, seed=3, stop_callback=callback)
    assert result.stopped_early
    assert result.iterations_run < 20


# ---------------------------------------------------------------- HMM route
def test_hmm_predictor_separates(corpora):
    train, test = corpora
    predictor = HMMDoomPredictor(seed=0).fit(train.logs[:150])
    ev = predictor.evaluate(test.logs[:100], consecutive=2)
    assert ev.error_rate < 0.5  # learns something real
    doomed = [log for log in test.logs if not log.success][0]
    ok = [log for log in test.logs if log.success][0]
    assert predictor.doom_score(doomed.drvs) > predictor.doom_score(ok.drvs)


def test_hmm_predictor_validation(corpora):
    train, _ = corpora
    with pytest.raises(ValueError):
        HMMDoomPredictor(margin=-1.0)
    with pytest.raises(RuntimeError):
        HMMDoomPredictor().doom_score([1, 2, 3])
    only_good = [log for log in train.logs if log.success]
    with pytest.raises(ValueError):
        HMMDoomPredictor().fit(only_good)


@settings(max_examples=15, deadline=None)
@given(
    drvs=st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=25)
)
def test_property_stop_iteration_bounds(drvs):
    """A stop decision, when made, happens inside the trajectory."""
    card = apply_fill_in_rules(_empty_card())
    t = stop_iteration(card, drvs, consecutive=1)
    if t is not None:
        assert 1 <= t < len(drvs)
