"""Flow-option tree, robot engineers, trajectory exploration, RL repair."""

import numpy as np
import pytest

from repro.core.orchestration import (
    DRCFixRobot,
    FlowOptionTree,
    FlowRepairAgent,
    FlowStepOptions,
    MemoryPlacementRobot,
    TimingClosureRobot,
    TrajectoryExplorer,
    default_option_tree,
)
from repro.eda.flow import FlowOptions
from repro.eda.floorplan import Floorplan
from repro.eda.synthesis import DesignSpec


@pytest.fixture(scope="module")
def robot_spec():
    return DesignSpec("robot", n_gates=120, n_flops=16, n_inputs=8, n_outputs=8,
                      depth=10, locality=0.8)


# ------------------------------------------------------------------- tree
def test_default_tree_is_enormous():
    tree = default_option_tree()
    assert tree.n_trajectories > 10_000


def test_tree_enumeration_and_sampling(rng):
    tree = default_option_tree()
    trajectories = list(tree.enumerate(limit=10))
    assert len(trajectories) == 10
    sample = tree.sample(rng)
    assert set(sample) == {name for _, name in tree.option_names()}
    options = tree.to_flow_options(sample)
    assert isinstance(options, FlowOptions)


def test_tree_validation():
    with pytest.raises(ValueError):
        FlowOptionTree(steps=[])
    with pytest.raises(ValueError):
        FlowStepOptions("s", {"x": []})
    step = FlowStepOptions("s", {"x": [1, 2]})
    with pytest.raises(ValueError):
        FlowOptionTree(steps=[step, step])


def test_step_combination_count():
    step = FlowStepOptions("s", {"a": [1, 2, 3], "b": [True, False]})
    assert step.n_combinations == 6


# ------------------------------------------------------------------ robots
def test_drc_robot_fixes_congested_block(robot_spec):
    # utilization 0.95 + weak router: initially unroutable
    bad = FlowOptions(target_clock_ghz=0.4, utilization=0.95,
                      router_effort=0.3, router_tracks_per_um=9.0)
    report = DRCFixRobot(max_attempts=7).run(robot_spec, bad, seed=1)
    assert report.attempts >= 1
    assert report.solved
    assert report.final_result.routed
    assert report.actions  # it had to do something


def test_drc_robot_gives_up_gracefully(robot_spec):
    hopeless = FlowOptions(target_clock_ghz=0.4, utilization=0.95,
                           router_tracks_per_um=1.0)
    report = DRCFixRobot(max_attempts=2).run(robot_spec, hopeless, seed=1)
    assert report.attempts == 2
    assert not report.solved


def test_timing_robot_closes_by_concession(robot_spec):
    # a truly infeasible target: the robot must eventually concede frequency
    greedy = FlowOptions(target_clock_ghz=8.0, opt_passes=2)
    report = TimingClosureRobot(max_attempts=8, frequency_step=2.0).run(
        robot_spec, greedy, seed=2
    )
    assert report.solved
    assert report.final_result.timing_met
    assert "concede target frequency" in report.actions
    # the achieved target is below the original ask: "aim low" mechanized
    assert report.final_result.options.target_clock_ghz < 8.0


def test_timing_robot_noop_when_already_met(robot_spec):
    easy = FlowOptions(target_clock_ghz=0.3)
    report = TimingClosureRobot().run(robot_spec, easy, seed=3)
    assert report.solved
    assert report.attempts == 1
    assert not report.actions


def test_memory_robot_places_macros():
    fp = Floorplan(width=30.0, height=30.0, utilization=0.7)
    robot = MemoryPlacementRobot(grid=5)
    report = robot.run(fp, [(8.0, 6.0), (6.0, 6.0)], seed=4)
    assert report.solved
    assert len(fp.macros) == 2
    assert not fp.macros[0].overlaps(fp.macros[1])


def test_memory_robot_rejects_oversized():
    fp = Floorplan(width=10.0, height=10.0, utilization=0.7)
    report = MemoryPlacementRobot().run(fp, [(20.0, 5.0)], seed=5)
    assert not report.solved
    assert not fp.macros


def test_robot_validation():
    with pytest.raises(ValueError):
        DRCFixRobot(max_attempts=0)
    with pytest.raises(ValueError):
        TimingClosureRobot(frequency_step=0.0)
    with pytest.raises(ValueError):
        MemoryPlacementRobot(grid=1)


# --------------------------------------------------------------- explorer
def test_explorer_finds_successful_trajectory(robot_spec):
    explorer = TrajectoryExplorer(n_concurrent=3, n_rounds=2)
    result = explorer.explore(robot_spec, seed=6)
    assert result.n_runs == 6
    assert result.best_result is not None
    assert result.score_trace == sorted(result.score_trace)  # monotone best


def test_explorer_validation():
    with pytest.raises(ValueError):
        TrajectoryExplorer(n_concurrent=1)
    with pytest.raises(ValueError):
        TrajectoryExplorer(n_rounds=0)
    with pytest.raises(ValueError):
        TrajectoryExplorer(survivor_fraction=0.0)


# ----------------------------------------------------------------- stage 4
def test_repair_agent_learns_policy(robot_spec):
    agent = FlowRepairAgent(epsilon=0.5)
    start = FlowOptions(target_clock_ghz=2.5, opt_passes=2)  # broken timing
    policy = agent.train(robot_spec, start, n_episodes=3, steps_per_episode=3, seed=7)
    assert policy  # visited at least one broken state
    for state, action in policy.items():
        assert action in FlowRepairAgent.ACTIONS
        assert len(state) == 2


def test_repair_agent_actions_modify_options():
    agent = FlowRepairAgent()
    base = FlowOptions()
    for action in FlowRepairAgent.ACTIONS:
        changed = agent.apply_action(base, action)
        assert changed != base
    with pytest.raises(ValueError):
        agent.apply_action(base, "reboot")


def test_repair_agent_state_buckets(robot_spec):
    from repro.eda.flow import SPRFlow

    good = SPRFlow().run(robot_spec, FlowOptions(target_clock_ghz=0.3), seed=8)
    state = FlowRepairAgent.state_of(good)
    assert state[0] == 0  # timing met
    bad = SPRFlow().run(robot_spec, FlowOptions(target_clock_ghz=5.0), seed=8)
    assert FlowRepairAgent.state_of(bad)[0] > 0


def test_repair_agent_validation():
    with pytest.raises(ValueError):
        FlowRepairAgent(alpha=0.0)
    with pytest.raises(ValueError):
        FlowRepairAgent(gamma=1.0)
