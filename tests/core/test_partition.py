"""K-way partitioning, block extraction, and the partitioned flow."""

import pytest

from repro.core.partition import (
    PartitionedResult,
    cut_nets,
    extract_partition,
    kway_partition,
    partitioned_implementation,
)
from repro.eda.flow import FlowOptions, SPRFlow
from repro.eda.synthesis import DesignSpec


@pytest.fixture(scope="module")
def blocks(small_netlist):
    return kway_partition(small_netlist, 4, seed=1)


def test_partition_covers_everything_once(small_netlist, blocks):
    seen = [name for block in blocks for name in block]
    assert sorted(seen) == sorted(small_netlist.instances)
    assert len(blocks) == 4


def test_partition_is_balanced(small_netlist, blocks):
    sizes = [len(b) for b in blocks]
    assert max(sizes) <= 2 * min(sizes)


def test_partition_beats_random_cut(small_netlist, blocks, rng):
    names = list(small_netlist.instances)
    rng.shuffle(names)
    quarter = len(names) // 4
    random_blocks = [names[i * quarter : (i + 1) * quarter] for i in range(3)]
    random_blocks.append(names[3 * quarter :])
    assert len(cut_nets(small_netlist, blocks)) <= len(
        cut_nets(small_netlist, random_blocks)
    )


def test_partition_validation(small_netlist):
    with pytest.raises(ValueError):
        kway_partition(small_netlist, 3, seed=0)  # not a power of 2
    with pytest.raises(ValueError):
        kway_partition(small_netlist, 256, seed=0)  # too small for that
    with pytest.raises(ValueError):
        cut_nets(small_netlist, [["g0"]])  # misses instances


def test_extract_block_is_valid(small_netlist, blocks):
    for i, block in enumerate(blocks):
        sub = extract_partition(small_netlist, block, f"blk{i}")
        sub.validate()
        assert sub.n_instances == len(block)
        assert sub.clock_net == small_netlist.clock_net
        # every instance kept its cell
        for name in block:
            assert sub.instances[name].cell == small_netlist.instances[name].cell


def test_extract_boundary_conversion(small_netlist, blocks):
    sub = extract_partition(small_netlist, blocks[0], "blk0")
    inside = set(blocks[0])
    # every net consumed inside but driven outside became a PI
    for inst_name in inside:
        original = small_netlist.instances[inst_name]
        for net in original.input_nets:
            if net == small_netlist.clock_net:
                continue
            driver = small_netlist.nets[net].driver
            if driver is None or driver not in inside:
                assert net in sub.primary_inputs
    # every inside-driven net with outside sinks became a PO
    for inst_name in inside:
        out = small_netlist.instances[inst_name].output_net
        if any(s not in inside for s, _ in small_netlist.nets[out].sinks):
            assert out in sub.primary_outputs


def test_extract_validation(small_netlist):
    with pytest.raises(ValueError):
        extract_partition(small_netlist, [], "empty")
    with pytest.raises(ValueError):
        extract_partition(small_netlist, ["nope"], "bad")


def test_extracted_block_implements(small_netlist, blocks):
    sub = extract_partition(small_netlist, blocks[0], "blk0")
    result = SPRFlow().implement(sub, FlowOptions(target_clock_ghz=0.5), seed=3)
    assert result.area > 0
    assert [log.step for log in result.logs][0] == "floorplan"  # no synth step


def test_partitioned_implementation_end_to_end():
    spec = DesignSpec("pt", n_gates=200, n_flops=24, n_inputs=12, n_outputs=12,
                      depth=12, locality=0.8)
    result = partitioned_implementation(
        spec, FlowOptions(target_clock_ghz=0.5), n_partitions=2, seed=4,
        run_flat_reference=True,
    )
    assert len(result.blocks) == 2
    assert result.n_cut_nets > 0
    assert result.tat_parallel < result.tat_serial
    assert result.speedup_vs_flat() > 1.0  # blocks in parallel beat flat TAT
    assert result.area == pytest.approx(sum(b.area for b in result.blocks))
    assert result.wns == min(b.wns for b in result.blocks)


def test_partitioned_result_requires_flat_for_speedup():
    spec = DesignSpec("pt2", n_gates=120, n_flops=16, n_inputs=8, n_outputs=8, depth=8)
    result = partitioned_implementation(
        spec, FlowOptions(target_clock_ghz=0.4), n_partitions=2, seed=5
    )
    with pytest.raises(ValueError):
        result.speedup_vs_flat()
