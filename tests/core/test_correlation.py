"""Analysis miscorrelation: datasets, correction models, guardbands."""

import numpy as np
import pytest

from repro.core.correlation import (
    MiscorrelationModel,
    accuracy_cost_curve,
    build_corner_dataset,
    build_correlation_dataset,
    build_gba_pba_dataset,
    guardband_for,
    guardband_optimization_cost,
    miscorrelation_stats,
)


@pytest.fixture(scope="module")
def dataset():
    return build_correlation_dataset(n_designs=4, seed=2)


def test_dataset_shape(dataset):
    assert dataset.n_samples > 100
    assert dataset.X.shape == (dataset.n_samples, len(dataset.feature_names))
    assert len(dataset.endpoint_names) == dataset.n_samples
    assert np.isfinite(dataset.X).all()


def test_engines_genuinely_disagree(dataset):
    """Miscorrelation exists: the engines differ on most endpoints."""
    stats = miscorrelation_stats(dataset)
    assert stats["mae"] > 1.0
    # the cheap engine is systematically optimistic vs signoff here
    assert stats["mean"] < 0.0


def test_split_partitions_dataset(dataset):
    train, test = dataset.split(0.7, seed=0)
    assert train.n_samples + test.n_samples == dataset.n_samples
    assert set(train.endpoint_names).isdisjoint(test.endpoint_names)
    with pytest.raises(ValueError):
        dataset.split(1.5)


@pytest.mark.parametrize("kind", ["ridge", "gbm"])
def test_correction_model_shrinks_error(dataset, kind):
    train, test = dataset.split(0.7, seed=1)
    model = MiscorrelationModel(kind=kind, seed=0).fit(train)
    report = model.report(test)
    assert report["ml_mae"] < report["raw_mae"] * 0.5


def test_model_validation(dataset):
    with pytest.raises(ValueError):
        MiscorrelationModel(kind="svm")
    with pytest.raises(RuntimeError):
        MiscorrelationModel().predict_golden(dataset)


def test_guardband_covers_optimism():
    cheap = np.array([10.0, 5.0, 0.0, -5.0])
    golden = np.array([0.0, 4.0, 1.0, -5.0])  # first endpoint: 10ps optimistic
    g = guardband_for(cheap, golden, coverage=1.0)
    assert g == pytest.approx(10.0)
    # with the guardband applied, no endpoint is over-promised
    assert ((cheap - g) <= golden).all()


def test_guardband_validation():
    with pytest.raises(ValueError):
        guardband_for(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        guardband_for(np.ones(3), np.ones(3), coverage=0.3)


def test_ml_shrinks_guardband(dataset):
    train, test = dataset.split(0.7, seed=3)
    raw_gb = guardband_for(test.cheap_slack, test.golden_slack)
    model = MiscorrelationModel(kind="gbm", seed=0).fit(train)
    corrected = model.predict_golden(test)
    ml_gb = guardband_for(corrected, test.golden_slack)
    assert ml_gb < raw_gb


def test_accuracy_cost_curve_shape(dataset):
    """Fig 8: ML point sits near golden accuracy at near cheap cost."""
    train, test = dataset.split(0.7, seed=4)
    points = {p.name: p for p in accuracy_cost_curve(train, test, seed=0)}
    cheap, golden = points["cheap"], points["golden"]
    ml = points["cheap+ML(gbm)"]
    assert golden.cost > cheap.cost * 3
    assert ml.error < cheap.error * 0.5
    assert ml.cost < golden.cost * 0.5
    assert golden.error == 0.0


def test_gba_pba_dataset():
    ds = build_gba_pba_dataset(n_designs=2, seed=5)
    # PBA recovers pessimism: golden (PBA) slack >= cheap (GBA) slack
    assert (ds.divergence >= -1e-9).all()
    assert ds.golden_runtime > ds.cheap_runtime
    train, test = ds.split(0.7, seed=0)
    model = MiscorrelationModel(kind="ridge").fit(train)
    report = model.report(test)
    assert report["ml_mae"] <= report["raw_mae"]


def test_corner_dataset_prediction():
    ds = build_corner_dataset(n_designs=3, seed=6)
    assert any(name.startswith("slack_") for name in ds.feature_names)
    train, test = ds.split(0.7, seed=0)
    model = MiscorrelationModel(kind="ridge").fit(train)
    report = model.report(test)
    # predicting the missing (fast) corner from analyzed corners beats
    # reusing the typical-corner slack
    assert report["ml_mae"] < report["raw_mae"]


def test_guardband_optimization_cost_monotone():
    rows = guardband_optimization_cost([0.0, 120.0], seed=3)
    assert rows[1]["sizing_ops"] >= rows[0]["sizing_ops"]
    assert rows[1]["area_delta"] >= rows[0]["area_delta"]
    with pytest.raises(ValueError):
        guardband_optimization_cost([-5.0])
