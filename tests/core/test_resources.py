"""Resource scheduling (paper ref [1])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orchestration.resources import (
    Job,
    ResourcePool,
    compare_policies,
    jobs_from_flow_estimates,
    schedule_jobs,
)


def _jobs():
    return [
        Job("syn_a", 5.0, {"syn": 1}),
        Job("syn_b", 3.0, {"syn": 1}),
        Job("pnr_a", 12.0, {"pnr": 1}),
        Job("pnr_b", 9.0, {"pnr": 1}),
        Job("pnr_c", 7.0, {"pnr": 1}),
        Job("sta_a", 2.0, {"sta": 1}),
    ]


def _pool():
    return ResourcePool(machines=3, licenses={"syn": 1, "pnr": 2, "sta": 1})


def test_schedule_completes_all_jobs():
    schedule = schedule_jobs(_jobs(), _pool(), "fifo")
    assert len(schedule.entries) == len(_jobs())
    assert schedule.makespan > 0


def test_serial_on_single_machine():
    pool = ResourcePool(machines=1)
    jobs = [Job(f"j{i}", 2.0) for i in range(4)]
    schedule = schedule_jobs(jobs, pool, "fifo")
    assert schedule.makespan == pytest.approx(8.0)
    # no overlap
    spans = sorted((e.start, e.end) for e in schedule.entries)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-9


def test_parallel_machines_shorten_makespan():
    jobs = [Job(f"j{i}", 4.0) for i in range(4)]
    serial = schedule_jobs(jobs, ResourcePool(machines=1), "fifo").makespan
    parallel = schedule_jobs(jobs, ResourcePool(machines=4), "fifo").makespan
    assert parallel == pytest.approx(4.0)
    assert serial == pytest.approx(16.0)


def test_license_limits_respected():
    pool = ResourcePool(machines=10, licenses={"pnr": 1})
    jobs = [Job(f"p{i}", 5.0, {"pnr": 1}) for i in range(3)]
    schedule = schedule_jobs(jobs, pool, "fifo")
    # one license: strictly serial despite 10 machines
    assert schedule.makespan == pytest.approx(15.0)


def test_lpt_beats_or_matches_fifo_makespan():
    # adversarial FIFO order: long job last straggles
    jobs = [Job("s1", 1.0), Job("s2", 1.0), Job("s3", 1.0), Job("long", 9.0)]
    pool = ResourcePool(machines=2)
    fifo = schedule_jobs(jobs, pool, "fifo").makespan
    lpt = schedule_jobs(jobs, pool, "lpt").makespan
    # LPT: long job on one machine, the three shorts share the other -> 9
    # FIFO: the long job starts only at t=1 -> 10
    assert lpt == pytest.approx(9.0)
    assert fifo == pytest.approx(10.0)
    assert lpt <= fifo


def test_spt_minimizes_waiting():
    jobs = [Job("long", 10.0), Job("short", 1.0)]
    pool = ResourcePool(machines=1)
    spt = schedule_jobs(jobs, pool, "spt")
    fifo = schedule_jobs(jobs, pool, "fifo")
    assert spt.mean_waiting_time < fifo.mean_waiting_time


def test_utilization_bounded():
    schedule = schedule_jobs(_jobs(), _pool(), "lpt")
    u = schedule.utilization(_pool())
    assert 0.0 < u <= 1.0


def test_compare_policies_keys():
    results = compare_policies(_jobs(), _pool(), seed=1)
    assert set(results) == {"lpt", "spt", "fifo", "random"}
    assert all(v > 0 for v in results.values())


def test_impossible_job_rejected():
    pool = ResourcePool(machines=1, licenses={})
    with pytest.raises(ValueError):
        schedule_jobs([Job("big", 1.0, machines=2)], pool)
    with pytest.raises(ValueError):
        schedule_jobs([Job("lic", 1.0, {"pnr": 1})], pool)


def test_job_validation():
    with pytest.raises(ValueError):
        Job("bad", 0.0)
    with pytest.raises(ValueError):
        Job("bad", 1.0, machines=0)
    with pytest.raises(ValueError):
        Job("bad", 1.0, {"pnr": 0})
    with pytest.raises(ValueError):
        ResourcePool(machines=0)
    with pytest.raises(ValueError):
        schedule_jobs([Job("j", 1.0)], ResourcePool(machines=1), "mystery")


def test_jobs_from_flow_estimates():
    jobs = jobs_from_flow_estimates({"run_a": 100.0, "run_b": 50.0})
    assert len(jobs) == 2
    assert all(j.licenses == {"pnr": 1} for j in jobs)


@settings(max_examples=20, deadline=None)
@given(
    runtimes=st.lists(st.floats(min_value=0.1, max_value=20), min_size=1, max_size=12),
    machines=st.integers(min_value=1, max_value=4),
)
def test_property_no_machine_oversubscription(runtimes, machines):
    """At any instant, concurrently-running jobs never exceed machines."""
    jobs = [Job(f"j{i}", r) for i, r in enumerate(runtimes)]
    pool = ResourcePool(machines=machines)
    schedule = schedule_jobs(jobs, pool, "lpt")
    events = sorted(
        {e.start for e in schedule.entries} | {e.end for e in schedule.entries}
    )
    for t in events:
        active = sum(1 for e in schedule.entries if e.start <= t < e.end)
        assert active <= machines
    # makespan lower bounds: max runtime and total work / machines
    assert schedule.makespan >= max(runtimes) - 1e-9
    assert schedule.makespan >= sum(runtimes) / machines - 1e-9
