"""Extended bandit policies: Bayes-UCB and sliding-window Thompson."""

import numpy as np
import pytest

from repro.core.bandit import (
    BatchBanditScheduler,
    BayesUCB,
    SlidingWindowThompson,
    SyntheticBanditEnvironment,
    ThompsonSampling,
    UniformRandom,
    expected_total_regret,
)
from repro.core.bandit.policies import _norm_ppf


def test_norm_ppf_known_values():
    assert _norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)
    assert _norm_ppf(0.975) == pytest.approx(1.959964, abs=1e-3)
    assert _norm_ppf(0.025) == pytest.approx(-1.959964, abs=1e-3)
    assert _norm_ppf(0.999) == pytest.approx(3.0902, abs=1e-2)
    with pytest.raises(ValueError):
        _norm_ppf(0.0)


@pytest.mark.parametrize("cls,kwargs", [
    (BayesUCB, {}),
    (SlidingWindowThompson, {"window": 30}),
])
def test_new_policies_converge(cls, kwargs):
    policy = cls(3, seed=0, **kwargs)
    rng = np.random.default_rng(1)
    probs = [0.1, 0.4, 0.9]
    late = 0
    for t in range(400):
        arm = policy.select()
        policy.update(arm, 1.0 if rng.random() < probs[arm] else 0.0)
        if t >= 300 and arm == 2:
            late += 1
    assert late >= 60  # concentrated on the best arm


def test_bayes_ucb_beats_uniform():
    def total(cls, seed):
        env = SyntheticBanditEnvironment([0.2, 0.5, 0.9], seed=seed)
        res = BatchBanditScheduler(40, 5).run(cls(3, seed=seed + 1), env)
        return expected_total_regret(res, env.true_means)

    bucb = np.mean([total(BayesUCB, s) for s in range(6)])
    unif = np.mean([total(UniformRandom, s) for s in range(6)])
    assert bucb < unif / 2


def test_policy_validation():
    with pytest.raises(ValueError):
        BayesUCB(3, prior=0.0)
    with pytest.raises(ValueError):
        SlidingWindowThompson(3, window=1)


class _FlippingEnv(SyntheticBanditEnvironment):
    """Best arm moves from 0 to 5 at a fixed pull count (tool update)."""

    def __init__(self, seed, flip_at=500):
        super().__init__([0.9] + [0.15] * 5, seed=seed)
        self.t = 0
        self.flip_at = flip_at

    def pull(self, arm):
        self.t += 1
        if self.t == self.flip_at:
            probs = np.full(6, 0.15)
            probs[5] = 0.9
            self.success_probs = probs
        return super().pull(arm)


def test_sliding_window_recovers_from_drift():
    """After a regime change, the windowed posterior re-adapts while the
    full-history posterior stays anchored to stale evidence."""

    def recovery_reward(cls, seed, **kw):
        env = _FlippingEnv(seed)
        policy = cls(6, seed=seed + 1, **kw)
        result = BatchBanditScheduler(200, 5).run(policy, env)
        window = [r.reward for r in result.records if 110 <= r.iteration < 150]
        return float(np.mean(window))

    ts = np.mean([recovery_reward(ThompsonSampling, s) for s in range(5)])
    sw = np.mean([recovery_reward(SlidingWindowThompson, s, window=60) for s in range(5)])
    assert sw > ts + 0.2


def test_sliding_window_bounded_memory():
    policy = SlidingWindowThompson(2, window=10, seed=0)
    for _ in range(50):
        arm = policy.select()
        policy.update(arm, 1.0)
    assert len(policy._recent) == 10
