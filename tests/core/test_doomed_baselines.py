"""Logistic doomed-run baseline and predictor comparison."""

import pytest

from repro.bench.corpus import RouterLogCorpus
from repro.core.doomed import LogisticDoomBaseline, MDPCardLearner, evaluate_policy


@pytest.fixture(scope="module")
def corpora():
    train = RouterLogCorpus.artificial(n=250, seed=31)
    test = RouterLogCorpus.cpu_floorplans(n=200, seed=32, n_base_maps=3)
    return train, test


def test_logistic_baseline_fits_and_evaluates(corpora):
    train, test = corpora
    baseline = LogisticDoomBaseline(seed=0).fit(train)
    ev = baseline.evaluate(test, consecutive=2)
    assert ev.n_logs == len(test)
    assert ev.error_rate < 0.5


def test_logistic_baseline_separates_examples(corpora):
    train, test = corpora
    baseline = LogisticDoomBaseline(seed=0).fit(train)
    doomed = next(log for log in test if not log.success and log.final_drvs > 5000)
    healthy = next(log for log in test if log.success and log.final_drvs == 0)
    t = len(doomed.drvs) - 1
    t2 = len(healthy.drvs) - 1
    assert baseline.doom_probability(doomed.drvs, t) > baseline.doom_probability(
        healthy.drvs, t2
    )


def test_logistic_baseline_consecutive_semantics(corpora):
    train, _ = corpora
    baseline = LogisticDoomBaseline(seed=0).fit(train)
    doomed_series = [50_000, 100_000, 200_000, 400_000, 800_000]
    t1 = baseline.stop_iteration(doomed_series, consecutive=1)
    t2 = baseline.stop_iteration(doomed_series, consecutive=2)
    assert t1 is not None and t2 is not None
    assert t2 >= t1
    with pytest.raises(ValueError):
        baseline.stop_iteration(doomed_series, consecutive=0)


def test_logistic_baseline_validation(corpora):
    train, _ = corpora
    with pytest.raises(ValueError):
        LogisticDoomBaseline(threshold=0.0)
    with pytest.raises(RuntimeError):
        LogisticDoomBaseline().doom_probability([1, 2, 3], 1)
    with pytest.raises(ValueError):
        LogisticDoomBaseline().fit([])
    good_only = [log for log in train if log.success]
    with pytest.raises(ValueError):
        LogisticDoomBaseline().fit(good_only)


def test_mdp_competitive_with_baseline(corpora):
    """The sequential MDP model must be competitive with (usually better
    than) the per-observation logistic baseline at the paper's operating
    point (2-3 consecutive STOPs)."""
    train, test = corpora
    card = MDPCardLearner().fit(train)
    baseline = LogisticDoomBaseline(seed=0).fit(train)
    mdp_err = min(
        evaluate_policy(card, test, k).error_rate for k in (2, 3)
    )
    logistic_err = min(
        baseline.evaluate(test, k).error_rate for k in (2, 3)
    )
    assert mdp_err <= logistic_err + 0.05
