"""Longer-rope prediction and doomed-floorplan veto."""

import numpy as np
import pytest

from repro.bench.generators import artificial_profile
from repro.core.prediction import (
    FLOW_STAGES,
    FloorplanDoomPredictor,
    RopeDataset,
    RopePredictor,
    build_rope_dataset,
    span_accuracy_profile,
)
from repro.eda.flow import FlowOptions


@pytest.fixture(scope="module")
def rope_dataset():
    specs = [artificial_profile(i) for i in range(3)]
    return build_rope_dataset(specs=specs, n_runs=36, seed=4)


def test_dataset_features_shapes(rope_dataset):
    for span in (1, 3, len(FLOW_STAGES)):
        X = rope_dataset.features(span)
        assert X.shape[0] == len(rope_dataset)
        assert np.isfinite(X).all()
    # longer ropes see more features
    assert rope_dataset.features(3).shape[1] > rope_dataset.features(1).shape[1]
    with pytest.raises(ValueError):
        rope_dataset.features(0)
    with pytest.raises(ValueError):
        rope_dataset.features(len(FLOW_STAGES) + 1)


def test_dataset_targets(rope_dataset):
    for target in ("wns", "final_drvs", "area", "achieved_ghz"):
        y = rope_dataset.target(target)
        assert y.shape == (len(rope_dataset),)
    with pytest.raises(ValueError):
        rope_dataset.target("coffee")


def test_dataset_split(rope_dataset):
    train, test = rope_dataset.split(0.75, seed=1)
    assert len(train) + len(test) == len(rope_dataset)
    with pytest.raises(ValueError):
        rope_dataset.split(0.0)


def test_rope_predictor_learns(rope_dataset):
    train, test = rope_dataset.split(0.7, seed=2)
    predictor = RopePredictor(span=len(FLOW_STAGES), target="area", seed=0).fit(train)
    score = predictor.score(test)
    # area is strongly determined by synthesis metrics: must predict well
    assert score["r2"] > 0.5
    with pytest.raises(ValueError):
        RopePredictor(span=2, target="coffee")
    with pytest.raises(RuntimeError):
        RopePredictor(span=2).predict(test)


def test_span_profile_structure(rope_dataset):
    train, test = rope_dataset.split(0.7, seed=3)
    profile = span_accuracy_profile(train, test, "area", seed=0)
    assert len(profile) == len(FLOW_STAGES)
    for entry in profile:
        assert {"span", "r2", "mae"} <= set(entry)
    # more information must not degrade prediction catastrophically
    # (small-sample RF noise allows mild inversions; the benchmark's
    # 90-run dataset shows the clean monotone picture)
    assert profile[-1]["mae"] <= profile[0]["mae"] * 2.0


def test_empty_dataset_rejected():
    with pytest.raises(ValueError):
        RopeDataset([])
    with pytest.raises(ValueError):
        build_rope_dataset(n_runs=2)


# ----------------------------------------------------------- floorplan doom
@pytest.fixture(scope="module")
def doom_runs():
    specs = [artificial_profile(i) for i in range(3)]
    predictor = FloorplanDoomPredictor(seed=0)
    return predictor.collect_training_runs(specs, n_runs=48, seed=9)


def test_doom_predictor_learns_utilization_effect(doom_runs):
    predictor = FloorplanDoomPredictor(seed=0).fit_from_results(doom_runs)
    spec = artificial_profile(0)
    easy = FlowOptions(utilization=0.5, router_tracks_per_um=18.0)
    hard = FlowOptions(utilization=0.95, router_tracks_per_um=8.0)
    assert predictor.success_probability(spec, easy) > predictor.success_probability(spec, hard)


def test_doom_predictor_veto(doom_runs):
    predictor = FloorplanDoomPredictor(threshold=0.5, seed=0).fit_from_results(doom_runs)
    spec = artificial_profile(1)
    assert not predictor.veto(spec, FlowOptions(utilization=0.5, router_tracks_per_um=20.0))
    assert predictor.veto(spec, FlowOptions(utilization=0.95, router_tracks_per_um=6.0))


def test_doom_predictor_evaluation(doom_runs):
    predictor = FloorplanDoomPredictor(seed=0).fit_from_results(doom_runs[:36])
    report = predictor.evaluate(doom_runs[36:])
    assert report["n"] == 12
    assert 0.0 <= report["accuracy"] <= 1.0
    assert report["accuracy"] > 0.5  # beats coin flips


def test_doom_predictor_validation(doom_runs):
    with pytest.raises(ValueError):
        FloorplanDoomPredictor(threshold=0.0)
    with pytest.raises(RuntimeError):
        FloorplanDoomPredictor().veto(artificial_profile(0), FlowOptions())
    routed_only = [r for r in doom_runs if r.routed]
    with pytest.raises(ValueError):
        FloorplanDoomPredictor().fit_from_results(routed_only)
