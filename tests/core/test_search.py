"""GWTW, adaptive multistart, and the big-valley landscape."""

import numpy as np
import pytest

from repro.core.search import (
    AdaptiveMultistart,
    BisectionProblem,
    big_valley_correlation,
    go_with_the_winners,
    independent_multistart,
)
from repro.core.search.multistart import random_multistart


@pytest.fixture(scope="module")
def problem():
    return BisectionProblem.random_community(
        n_nodes=96, n_communities=12, p_in=0.6, p_out=0.06, seed=1
    )


def test_problem_from_netlist(small_netlist):
    problem = BisectionProblem.from_netlist(small_netlist)
    assert problem.n_nodes == small_netlist.n_instances
    assert problem.edges
    rng = np.random.default_rng(0)
    sol = problem.random_solution(rng)
    assert problem.is_balanced(sol)
    assert problem.cost(sol) > 0


def test_cost_counts_cut_edges():
    problem = BisectionProblem(n_nodes=4, edges=[(0, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0)])
    assign = np.array([False, False, True, True])
    assert problem.cost(assign) == 1.0  # only (1,2) is cut
    assert problem.cost(~assign) == 1.0  # symmetric


def test_gain_matches_cost_delta(problem, rng):
    assign = problem.random_solution(rng)
    for node in range(0, problem.n_nodes, 17):
        before = problem.cost(assign)
        gain = problem.gain(assign, node)
        flipped = assign.copy()
        flipped[node] = ~flipped[node]
        assert problem.cost(flipped) == pytest.approx(before - gain)


def test_local_search_never_worsens(problem, rng):
    start = problem.random_solution(rng)
    improved = problem.local_search(start, rng)
    assert problem.cost(improved) <= problem.cost(start)
    assert problem.is_balanced(improved)


def test_distance_symmetry(problem, rng):
    a = problem.random_solution(rng)
    b = problem.random_solution(rng)
    assert problem.distance(a, b) == problem.distance(b, a)
    assert problem.distance(a, a) == 0
    assert problem.distance(a, ~a) == 0  # label symmetry


def test_problem_validation():
    with pytest.raises(ValueError):
        BisectionProblem(n_nodes=2, edges=[])
    with pytest.raises(ValueError):
        BisectionProblem(n_nodes=4, edges=[(0, 9, 1.0)])
    with pytest.raises(ValueError):
        BisectionProblem(n_nodes=4, edges=[(0, 1, -1.0)])


def test_big_valley_exists(problem):
    """Cost correlates with distance-to-best: the Fig 6(b) structure."""
    corr, minima, costs = big_valley_correlation(problem, n_starts=40, seed=2)
    assert corr > 0.2
    assert len(minima) == len(costs) == 40


def test_gwtw_beats_or_matches_multistart(problem):
    gwtw = [go_with_the_winners(problem, n_threads=8, n_stages=16,
                                steps_per_stage=25, seed=s).best_cost for s in range(4)]
    plain = [independent_multistart(problem, n_threads=8, n_stages=16,
                                    steps_per_stage=25, seed=s).best_cost for s in range(4)]
    assert np.mean(gwtw) <= np.mean(plain) + 1.5


def test_gwtw_trace_monotone(problem):
    result = go_with_the_winners(problem, n_threads=4, n_stages=6, seed=3)
    assert all(a >= b for a, b in zip(result.cost_trace, result.cost_trace[1:]))
    assert result.total_moves > 0
    assert problem.is_balanced(result.best_assign)


def test_gwtw_validation(problem):
    with pytest.raises(ValueError):
        go_with_the_winners(problem, n_threads=1)
    with pytest.raises(ValueError):
        go_with_the_winners(problem, survivor_fraction=1.0)


def test_adaptive_multistart_beats_random(problem):
    """Equal local-search budget: consensus starts find better minima."""
    ams = AdaptiveMultistart(n_initial=12, n_adaptive_rounds=4, starts_per_round=4)
    budget = 12 + 4 * 4
    a = [ams.run(problem, seed=s).best_cost for s in range(5)]
    r = [random_multistart(problem, budget, seed=s).best_cost for s in range(5)]
    assert np.mean(a) <= np.mean(r) + 1.0


def test_adaptive_multistart_bookkeeping(problem):
    ams = AdaptiveMultistart(n_initial=6, n_adaptive_rounds=2, starts_per_round=3)
    result = ams.run(problem, seed=7)
    assert result.n_local_searches == 6 + 2 * 3
    assert len(result.all_costs) == result.n_local_searches
    assert result.best_cost == min(result.all_costs)
    assert problem.is_balanced(result.best_assign)


def test_adaptive_multistart_validation():
    with pytest.raises(ValueError):
        AdaptiveMultistart(n_initial=1)
    with pytest.raises(ValueError):
        AdaptiveMultistart(elite_size=1)
    with pytest.raises(ValueError):
        random_multistart(None, 0)
