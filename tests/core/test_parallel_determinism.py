"""Determinism under parallelism: every campaign layer must produce
bit-identical results and traces at any worker count.

Each test runs the same campaign through a serial executor
(``n_workers=1``) and a 4-worker process pool and compares full
results.  This is the property that makes "n_concurrent licenses" a
pure throughput knob, as in the paper's experiments.
"""

import numpy as np
import pytest

from repro.bench.characterize import characterize
from repro.core.bandit import (
    BatchBanditScheduler,
    FlowArmEnvironment,
    ThompsonSampling,
)
from repro.core.orchestration import TrajectoryExplorer
from repro.core.parallel import FlowExecutor
from repro.core.search import AdaptiveMultistart, BisectionProblem
from repro.core.search.multistart import random_multistart


@pytest.fixture(scope="module")
def pool4():
    with FlowExecutor(n_workers=4, cache=None) as executor:
        yield executor


def test_explorer_is_worker_count_invariant(small_spec, pool4):
    serial = TrajectoryExplorer(
        n_concurrent=3, n_rounds=2, executor=FlowExecutor(n_workers=1, cache=None)
    ).explore(small_spec, seed=6)
    parallel = TrajectoryExplorer(
        n_concurrent=3, n_rounds=2, executor=pool4
    ).explore(small_spec, seed=6)
    assert serial.score_trace == parallel.score_trace
    assert serial.best_score == parallel.best_score
    assert serial.best_result == parallel.best_result
    assert (serial.n_runs, serial.n_pruned) == (parallel.n_runs, parallel.n_pruned)


def test_bandit_schedule_is_worker_count_invariant(small_spec, pool4):
    def campaign(executor):
        env = FlowArmEnvironment(small_spec, [0.5, 0.7], seed=3)
        policy = ThompsonSampling(2, seed=4)
        result = BatchBanditScheduler(3, 2, executor=executor).run(policy, env)
        return result, env

    serial_result, serial_env = campaign(FlowExecutor(n_workers=1, cache=None))
    parallel_result, parallel_env = campaign(pool4)
    assert serial_result.records == parallel_result.records
    assert serial_result.total_reward == parallel_result.total_reward
    # the environment trace (every QoR) matches too
    assert len(serial_env.history) == len(parallel_env.history)
    for a, b in zip(serial_env.history, parallel_env.history):
        assert a.result == b.result


def test_bandit_executor_path_matches_plain_pulls(small_spec):
    """The executor path must equal the historical serial pull() loop."""
    env_plain = FlowArmEnvironment(small_spec, [0.5, 0.7], seed=3)
    plain = BatchBanditScheduler(2, 2).run(ThompsonSampling(2, seed=4), env_plain)
    env_exec = FlowArmEnvironment(small_spec, [0.5, 0.7], seed=3)
    threaded = BatchBanditScheduler(
        2, 2, executor=FlowExecutor(n_workers=1, cache=None)
    ).run(ThompsonSampling(2, seed=4), env_exec)
    assert plain.records == threaded.records


@pytest.fixture(scope="module")
def problem():
    return BisectionProblem.random_community(
        n_nodes=64, n_communities=8, p_in=0.6, p_out=0.06, seed=1
    )


def test_random_multistart_is_worker_count_invariant(problem, pool4):
    serial = random_multistart(problem, 6, seed=2,
                               executor=FlowExecutor(n_workers=1, cache=None))
    parallel = random_multistart(problem, 6, seed=2, executor=pool4)
    assert serial.best_cost == parallel.best_cost
    assert serial.all_costs == parallel.all_costs
    assert np.array_equal(serial.best_assign, parallel.best_assign)


def test_adaptive_multistart_is_worker_count_invariant(problem, pool4):
    ams = AdaptiveMultistart(n_initial=4, n_adaptive_rounds=2, starts_per_round=2,
                             elite_size=2)
    serial = ams.run(problem, seed=7, executor=FlowExecutor(n_workers=1, cache=None))
    parallel = ams.run(problem, seed=7, executor=pool4)
    assert serial.all_costs == parallel.all_costs
    assert np.array_equal(serial.best_assign, parallel.best_assign)
    assert serial.n_local_searches == parallel.n_local_searches == 4 + 2 * 2


def test_characterize_is_worker_count_invariant(pool4):
    serial = characterize(n_charts=4, n_stages=5, seed=5,
                          executor=FlowExecutor(n_workers=1, cache=None))
    parallel = characterize(n_charts=4, n_stages=5, seed=5, executor=pool4)
    assert [r.sizer for r in serial] == [r.sizer for r in parallel]
    for a, b in zip(serial, parallel):
        assert a.qualities == b.qualities


def test_cached_campaign_matches_uncached(small_spec):
    """Cache hits must be observationally identical to fresh runs."""
    cached = FlowExecutor(n_workers=1, cache=True)
    explorer = TrajectoryExplorer(n_concurrent=3, n_rounds=2, executor=cached)
    first = explorer.explore(small_spec, seed=9)
    second = explorer.explore(small_spec, seed=9)  # identical campaign
    assert first.best_result == second.best_result
    assert first.score_trace == second.score_trace
    assert cached.stats.cache_hit_rate >= 0.45  # second pass was ~free
