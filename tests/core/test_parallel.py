"""The parallel flow-execution engine and its result cache."""

import functools
import os
import time

import pytest

from repro.core.parallel import (
    FlowExecutionError,
    FlowExecutor,
    FlowJob,
    ResultCache,
    cache_key,
    design_fingerprint,
    flow_result_from_dict,
    flow_result_to_dict,
)
from repro.eda.flow import FlowOptions, SPRFlow


OPTS = FlowOptions(target_clock_ghz=0.6)


# ------------------------------------------------------------- cache keys
def test_cache_key_is_stable(small_spec):
    assert cache_key(small_spec, OPTS, 3) == cache_key(small_spec, OPTS, 3)


def test_cache_key_separates_design_options_seed(small_spec, small_netlist):
    base = cache_key(small_spec, OPTS, 3)
    assert cache_key(small_spec, OPTS, 4) != base
    assert cache_key(small_spec, OPTS.with_(opt_passes=7), 3) != base
    assert cache_key(small_netlist, OPTS, 3) != base


def test_design_fingerprint_types(small_spec, small_netlist):
    assert design_fingerprint(small_spec).startswith("spec:")
    assert design_fingerprint(small_netlist).startswith("netlist:")
    with pytest.raises(TypeError):
        design_fingerprint("pulpino")


def test_flow_result_json_round_trip(small_spec):
    result = SPRFlow().run(small_spec, OPTS, seed=9)
    assert flow_result_from_dict(flow_result_to_dict(result)) == result


def test_result_cache_lru_eviction(small_spec):
    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(max_entries=2)
    for k in ("a", "b", "c"):
        cache.put(k, result)
    assert len(cache) == 2
    assert cache.get("a") is None  # oldest evicted
    assert cache.get("c") == result


def test_result_cache_disk_tier(small_spec, tmp_path):
    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put("k", result)
    fresh = ResultCache(cache_dir=str(tmp_path))  # new process, cold memory
    assert fresh.get("k") == result
    assert fresh.last_tier == "disk"
    assert fresh.get("k") == result
    assert fresh.last_tier == "memory"  # promoted


def test_result_cache_corrupt_disk_entry_is_a_miss(tmp_path):
    (tmp_path / "bad.json").write_text("{not json")
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get("bad") is None


def test_result_cache_unserializable_put_leaks_nothing(tmp_path):
    """A result the disk tier cannot serialize (TypeError inside
    json.dump) must not leave .tmp droppings or leak descriptors."""
    cache = ResultCache(cache_dir=str(tmp_path))
    fd_dir = "/proc/self/fd"
    before = len(os.listdir(fd_dir)) if os.path.isdir(fd_dir) else None
    for i in range(20):
        cache.put(f"k{i}", object())  # not a dataclass: asdict raises
    assert os.listdir(str(tmp_path)) == []  # no .tmp, no .json
    assert cache.get("k0") is not None  # memory tier still served
    if before is not None:
        assert len(os.listdir(fd_dir)) <= before + 1  # no fd leak


def test_result_cache_clear_disk_removes_stale_tmp(small_spec, tmp_path):
    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put("k", result)
    (tmp_path / "killed-writer.tmp").write_text("{partial")
    (tmp_path / "notes.txt").write_text("keep me")  # foreign file
    cache.clear(disk=True)
    assert len(cache) == 0
    assert sorted(os.listdir(str(tmp_path))) == ["notes.txt"]
    fresh = ResultCache(cache_dir=str(tmp_path))
    assert fresh.get("k") is None


# ------------------------------------------------------- executor basics
def test_executor_matches_direct_flow(small_spec):
    direct = SPRFlow().run(small_spec, OPTS, seed=5)
    via = FlowExecutor(n_workers=1).run_one(small_spec, OPTS, 5)
    assert via == direct
    assert via.seed == 5


def test_executor_results_in_submission_order(small_spec):
    seeds = [4, 1, 3, 2]
    results = FlowExecutor(n_workers=1).run_jobs(
        [FlowJob(small_spec, OPTS, s) for s in seeds]
    )
    assert [r.seed for r in results] == seeds


def test_executor_implements_netlists(small_spec, library):
    from repro.eda.synthesis import synthesize

    netlist = synthesize(small_spec, library, effort=0.5, seed=7)  # private copy:
    result = FlowExecutor(n_workers=1).run_one(netlist, OPTS, 2)   # implement mutates
    assert result.design == netlist.name
    assert [log.step for log in result.logs][0] == "floorplan"  # no synth step


def test_executor_dedupes_within_batch(small_spec):
    executor = FlowExecutor(n_workers=1)
    results = executor.run_jobs([FlowJob(small_spec, OPTS, 1)] * 4)
    assert executor.stats.jobs_run == 1
    assert executor.stats.deduped == 3
    assert all(r == results[0] for r in results)


def test_executor_repeated_campaign_hits_cache(small_spec):
    executor = FlowExecutor(n_workers=1)
    jobs = [FlowJob(small_spec, OPTS, s) for s in range(6)]
    first = executor.run_jobs(jobs)
    ran_before = executor.stats.jobs_run
    again = executor.run_jobs(jobs)
    assert executor.stats.jobs_run == ran_before  # zero new runs
    assert executor.stats.cache_hits_memory == len(jobs)
    assert again == first
    # the acceptance bar: a repeated campaign is >= 95% cache hits
    assert executor.stats.cache_hits / len(jobs) >= 0.95


def test_executor_disk_cache_across_instances(small_spec, tmp_path):
    jobs = [FlowJob(small_spec, OPTS, s) for s in range(3)]
    with FlowExecutor(n_workers=1, cache=True, cache_dir=str(tmp_path)) as first:
        a = first.run_jobs(jobs)
    with FlowExecutor(n_workers=1, cache=True, cache_dir=str(tmp_path)) as second:
        b = second.run_jobs(jobs)
        assert second.stats.jobs_run == 0
        assert second.stats.cache_hits_disk == 3
    assert a == b


def test_executor_cache_disabled(small_spec):
    executor = FlowExecutor(n_workers=1, cache=None)
    executor.run_jobs([FlowJob(small_spec, OPTS, 1)] * 2)
    assert executor.stats.jobs_run == 2
    assert executor.stats.cache_hits == 0


def test_executor_validation():
    with pytest.raises(ValueError):
        FlowExecutor(n_workers=0)
    with pytest.raises(ValueError):
        FlowExecutor(timeout_s=0)
    with pytest.raises(ValueError):
        FlowExecutor(max_retries=-1)
    with pytest.raises(ValueError):
        FlowExecutor(cache=ResultCache(), cache_dir="/tmp/x")


# -------------------------------------------------- failure semantics
def _crash_always(design, options, seed, stop_callback=None):
    raise RuntimeError("license server exploded")


def _crash_once(flag_path, design, options, seed, stop_callback=None):
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("crashed")
        raise RuntimeError("transient crash")
    return SPRFlow().run(design, options, seed=seed)


def _sleepy(design, options, seed, stop_callback=None):
    time.sleep(2.0)
    return SPRFlow().run(design, options, seed=seed)


def test_crash_is_recorded_not_raised(small_spec):
    executor = FlowExecutor(n_workers=1, flow_fn=_crash_always, max_retries=1)
    outcomes = executor.run_jobs([FlowJob(small_spec, OPTS, 1),
                                  FlowJob(small_spec, OPTS, 2)])
    assert all(isinstance(o, FlowExecutionError) for o in outcomes)
    assert outcomes[0].attempts == 2
    assert outcomes[1].seed == 2
    assert executor.stats.failures == 2
    assert executor.stats.retries == 2


def test_crash_retry_recovers(small_spec, tmp_path):
    flow_fn = functools.partial(_crash_once, str(tmp_path / "flag"))
    executor = FlowExecutor(n_workers=1, flow_fn=flow_fn, max_retries=1,
                            cache=None)
    result = executor.run_one(small_spec, OPTS, 3)
    assert result == SPRFlow().run(small_spec, OPTS, seed=3)
    assert executor.stats.retries == 1
    assert executor.stats.failures == 0


def test_crash_in_worker_process_recorded(small_spec):
    with FlowExecutor(n_workers=2, flow_fn=_crash_always, max_retries=0,
                      cache=None) as executor:
        good_and_bad = executor.run_jobs([FlowJob(small_spec, OPTS, 1)])
    assert isinstance(good_and_bad[0], FlowExecutionError)
    assert executor.stats.failures == 1


def test_timeout_recorded_in_process_mode(small_spec):
    with FlowExecutor(n_workers=2, flow_fn=_sleepy, timeout_s=0.2,
                      cache=None) as executor:
        outcome = executor.run_one(small_spec, OPTS, 1)
    assert isinstance(outcome, FlowExecutionError)
    assert outcome.kind == "timeout"
    assert executor.stats.timeouts == 1


def test_failed_jobs_are_not_cached(small_spec, tmp_path):
    flow_fn = functools.partial(_crash_once, str(tmp_path / "flag"))
    executor = FlowExecutor(n_workers=1, flow_fn=flow_fn, max_retries=0)
    first = executor.run_one(small_spec, OPTS, 3)
    assert isinstance(first, FlowExecutionError)
    second = executor.run_one(small_spec, OPTS, 3)  # flag now exists
    assert second == SPRFlow().run(small_spec, OPTS, seed=3)


# ----------------------------------------------------------- generic map
def _square(x):
    return x * x


def test_generic_map_preserves_order():
    executor = FlowExecutor(n_workers=1)
    assert executor.map(_square, [(3,), (1,), (2,)]) == [9, 1, 4]


def test_generic_map_records_failures():
    executor = FlowExecutor(n_workers=1, max_retries=0)
    out = executor.map(_square, [(2,), ("oops",)])
    assert out[0] == 4
    assert isinstance(out[1], FlowExecutionError)


# --------------------------------------------------------------- speedup
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup acceptance needs >= 4 cores")
def test_twenty_run_campaign_speedup_on_four_workers(small_spec):
    """Acceptance bar: a 20-run campaign via FlowExecutor(n_workers=4)
    is >= 2x faster wall-clock than the serial loop, with identical
    results."""
    jobs = [FlowJob(small_spec, OPTS, s) for s in range(20)]
    t0 = time.perf_counter()
    serial = [SPRFlow().run(j.design, j.options, seed=j.seed) for j in jobs]
    t_serial = time.perf_counter() - t0
    with FlowExecutor(n_workers=4, cache=None) as executor:
        executor.run_jobs(jobs[:1])  # absorb pool start-up cost
        t0 = time.perf_counter()
        parallel = executor.run_jobs(jobs)
        t_parallel = time.perf_counter() - t0
    assert parallel == serial
    assert t_serial / t_parallel >= 2.0


# ----------------------------------------------------------------- stats
def test_stats_summary_and_accounting(small_spec):
    executor = FlowExecutor(n_workers=1)
    results = executor.run_jobs([FlowJob(small_spec, OPTS, s) for s in (1, 1, 2)])
    stats = executor.stats
    assert stats.jobs_submitted == 3
    assert stats.jobs_run == 2
    assert stats.deduped == 1
    assert stats.wall_time_s > 0
    assert stats.runtime_proxy_total == pytest.approx(
        sum(r.runtime_proxy for r in results)
    )
    line = stats.summary()
    assert "jobs=3" in line and "retries=0" in line and "wall=" in line


# ------------------------------------------------------ schema versioning
def test_disk_entries_carry_schema_version(small_spec, tmp_path):
    import json

    from repro.core.parallel import CACHE_SCHEMA

    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put("k", result)
    with open(tmp_path / "k.json") as fh:
        assert json.load(fh)["schema"] == CACHE_SCHEMA


def test_unversioned_disk_entry_is_a_miss(small_spec, tmp_path):
    """Entries written before schema versioning (no ``schema`` field)
    must be treated as misses, not deserialized on faith."""
    import json

    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put("k", result)
    with open(tmp_path / "k.json") as fh:
        data = json.load(fh)
    del data["schema"]
    (tmp_path / "k.json").write_text(json.dumps(data))
    fresh = ResultCache(cache_dir=str(tmp_path))
    assert fresh.get("k") is None


def test_wrong_schema_disk_entry_is_a_miss(small_spec, tmp_path):
    import json

    result = SPRFlow().run(small_spec, OPTS, seed=9)
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put("k", result)
    with open(tmp_path / "k.json") as fh:
        data = json.load(fh)
    data["schema"] = 999
    (tmp_path / "k.json").write_text(json.dumps(data))
    fresh = ResultCache(cache_dir=str(tmp_path))
    assert fresh.get("k") is None
    # memory tier of the writing instance is unaffected
    assert cache.get("k") == result


# ------------------------------------------------------- stage caching
def test_executor_stage_cache_serial(small_spec):
    """A fixed-seed suffix-knob sweep through a stage-cached executor:
    identical results, fewer executed proxy units, hits reported."""
    options = [OPTS.with_(router_effort=e) for e in (0.3, 0.6, 0.9)]
    jobs = [FlowJob(small_spec, o, 5) for o in options]
    plain = FlowExecutor(n_workers=1, cache=False)
    baseline = plain.run_jobs(jobs)
    staged = FlowExecutor(n_workers=1, cache=False, stage_cache=True)
    cached = staged.run_jobs(jobs)
    assert cached == baseline
    assert staged.stats.stage_hits > 0
    assert staged.stats.stage_hits_by_stage.get("opt", 0) > 0
    assert 0 < staged.stats.runtime_proxy_executed < staged.stats.runtime_proxy_total
    assert plain.stats.runtime_proxy_executed == pytest.approx(
        plain.stats.runtime_proxy_total)
    assert staged.stats.runtime_proxy_executed < plain.stats.runtime_proxy_executed
    line = staged.stats.summary()
    assert "stage_hits=" in line and "work_executed=" in line
    assert "stage_hits=" not in plain.stats.summary()  # only shown when active


def test_executor_stage_cache_pool_mode(small_spec):
    jobs = [FlowJob(small_spec, OPTS.with_(router_effort=e), 5)
            for e in (0.3, 0.6, 0.9, 0.45)]
    baseline = FlowExecutor(n_workers=1, cache=False).run_jobs(jobs)
    with FlowExecutor(n_workers=2, cache=False, stage_cache=True) as executor:
        assert executor.run_jobs(jobs) == baseline
        # more jobs than workers -> some worker ran >= 2 jobs, and its
        # worker-local cache served the shared prefix (pigeonhole)
        assert executor.stats.stage_hits > 0


def test_executor_persists_stage_stats(small_spec, tmp_path):
    import json

    jobs = [FlowJob(small_spec, OPTS.with_(router_effort=e), 5)
            for e in (0.3, 0.9)]
    with FlowExecutor(n_workers=1, cache=True, cache_dir=str(tmp_path),
                      stage_cache=True) as executor:
        executor.run_jobs(jobs)
    with open(tmp_path / "cache-stats.json") as fh:
        stats = json.load(fh)
    assert stats["jobs_run"] == 2
    assert stats["stage_hits"] > 0
    assert stats["stage_hits_by_stage"].get("opt", 0) > 0
    # a second campaign over the same dir merges by sum
    with FlowExecutor(n_workers=1, cache=True, cache_dir=str(tmp_path),
                      stage_cache=True) as executor:
        executor.run_jobs(jobs)
    with open(tmp_path / "cache-stats.json") as fh:
        merged = json.load(fh)
    assert merged["jobs_submitted"] == stats["jobs_submitted"] * 2


def test_executor_stage_cache_validation():
    with pytest.raises(ValueError):
        FlowExecutor(n_workers=1, stage_cache=True, stage_cache_entries=0)


def test_cache_stats_survive_concurrent_executors(tmp_path):
    """Two executors closing at once must not lose each other's counters.

    The persist path is read-merge-write on a shared json file; before
    it took an exclusive flock, overlapping closes could both read the
    same prior file and the later writer silently dropped the earlier
    one's counts.  Hammer the window from several threads: every single
    increment must survive into the final file.
    """
    import json
    import threading

    n_threads, rounds = 4, 20
    barrier = threading.Barrier(n_threads)
    errors = []

    def persist_loop():
        try:
            barrier.wait()
            for _ in range(rounds):
                executor = FlowExecutor(
                    n_workers=1, cache=True, cache_dir=str(tmp_path)
                )
                executor.stats.jobs_submitted = 1
                executor.stats.jobs_run = 1
                executor.stats.stage_hits_by_stage["opt"] = 1
                executor.close()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=persist_loop) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with open(tmp_path / "cache-stats.json") as fh:
        stats = json.load(fh)
    expected = n_threads * rounds
    assert stats["jobs_submitted"] == expected
    assert stats["jobs_run"] == expected
    assert stats["stage_hits_by_stage"]["opt"] == expected
    # never leaks partially-written temp files
    assert not list(tmp_path.glob("*.tmp"))
