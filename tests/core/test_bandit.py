"""Bandit policies, environments, scheduler, regret."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandit import (
    BatchBanditScheduler,
    EpsilonGreedy,
    GaussianThompsonSampling,
    Softmax,
    SyntheticBanditEnvironment,
    ThompsonSampling,
    UCB1,
    UniformRandom,
    cumulative_regret,
    expected_total_regret,
)

ALL_POLICIES = [
    lambda n, s: ThompsonSampling(n, seed=s),
    lambda n, s: GaussianThompsonSampling(n, seed=s),
    lambda n, s: Softmax(n, temperature=0.1, seed=s),
    lambda n, s: EpsilonGreedy(n, epsilon=0.1, seed=s),
    lambda n, s: UCB1(n, seed=s),
    lambda n, s: UniformRandom(n, seed=s),
]


@pytest.mark.parametrize("factory", ALL_POLICIES)
def test_policy_selects_valid_arms(factory):
    policy = factory(5, 0)
    for _ in range(50):
        arm = policy.select()
        assert 0 <= arm < 5
        policy.update(arm, 0.5)


@pytest.mark.parametrize("factory", ALL_POLICIES)
def test_policy_converges_to_best_arm(factory):
    """With clearly separated arms, >=half the late pulls hit the best."""
    policy = factory(3, 42)
    rng = np.random.default_rng(7)
    probs = [0.05, 0.5, 0.95]
    late_hits = 0
    for t in range(400):
        arm = policy.select()
        reward = 1.0 if rng.random() < probs[arm] else 0.0
        policy.update(arm, reward)
        if t >= 300 and arm == 2:
            late_hits += 1
    if not isinstance(policy, UniformRandom):
        assert late_hits >= 50


def test_update_validation():
    policy = ThompsonSampling(3, seed=0)
    with pytest.raises(IndexError):
        policy.update(5, 0.5)
    with pytest.raises(ValueError):
        policy.update(0, 1.5)


def test_thompson_posterior_tracks_mean():
    policy = ThompsonSampling(2, seed=0)
    for _ in range(200):
        policy.update(0, 1.0)
        policy.update(1, 0.0)
    post = policy.posterior_mean()
    assert post[0] > 0.9
    assert post[1] < 0.1


def test_ucb_explores_all_arms_first():
    policy = UCB1(4, seed=0)
    first_arms = []
    for _ in range(4):
        arm = policy.select()
        first_arms.append(arm)
        policy.update(arm, 0.5)
    assert sorted(first_arms) == [0, 1, 2, 3]


def test_policy_parameter_validation():
    with pytest.raises(ValueError):
        ThompsonSampling(0)
    with pytest.raises(ValueError):
        EpsilonGreedy(3, epsilon=2.0)
    with pytest.raises(ValueError):
        Softmax(3, temperature=0.0)
    with pytest.raises(ValueError):
        GaussianThompsonSampling(3, obs_std=0.0)


# ------------------------------------------------------------- environment
def test_synthetic_environment_rewards():
    env = SyntheticBanditEnvironment([1.0, 0.0], values=[0.5, 1.0], seed=0)
    r, info = env.pull(0)
    assert r == 0.5 and info["success"]
    r, info = env.pull(1)
    assert r == 0.0 and not info["success"]
    assert np.allclose(env.true_means, [0.5, 0.0])


def test_environment_validation():
    with pytest.raises(ValueError):
        SyntheticBanditEnvironment([])
    with pytest.raises(ValueError):
        SyntheticBanditEnvironment([0.5], values=[2.0])
    with pytest.raises(ValueError):
        SyntheticBanditEnvironment([1.5])


# --------------------------------------------------------------- scheduler
def test_scheduler_budget_accounting():
    env = SyntheticBanditEnvironment([0.2, 0.8], seed=1)
    policy = ThompsonSampling(2, seed=2)
    result = BatchBanditScheduler(n_iterations=10, n_concurrent=3).run(policy, env)
    assert len(result.records) == 30
    assert result.n_iterations == 10
    assert policy.total_pulls == 30


def test_scheduler_arm_mismatch_rejected():
    env = SyntheticBanditEnvironment([0.5, 0.5], seed=0)
    with pytest.raises(ValueError):
        BatchBanditScheduler().run(ThompsonSampling(3, seed=0), env)


def test_best_reward_trace_monotone():
    env = SyntheticBanditEnvironment([0.3, 0.9], seed=3)
    result = BatchBanditScheduler(20, 2).run(ThompsonSampling(2, seed=4), env)
    trace = result.best_reward_by_iteration()
    assert len(trace) == 20
    assert all(a <= b for a, b in zip(trace, trace[1:]))


def test_arms_by_iteration_shape():
    env = SyntheticBanditEnvironment([0.5, 0.5], seed=5)
    result = BatchBanditScheduler(8, 4).run(UniformRandom(2, seed=6), env)
    arms = result.arms_by_iteration()
    assert len(arms) == 8
    assert all(len(a) == 4 for a in arms)


def test_mean_reward_tail():
    env = SyntheticBanditEnvironment([0.0, 1.0], seed=7)
    result = BatchBanditScheduler(20, 2).run(ThompsonSampling(2, seed=8), env)
    assert 0.0 <= result.mean_reward_tail(0.25) <= 1.0
    with pytest.raises(ValueError):
        result.mean_reward_tail(0.0)


# ------------------------------------------------------------------ regret
def test_regret_zero_for_oracle():
    env = SyntheticBanditEnvironment([0.2, 0.9], seed=9)

    class Oracle(UniformRandom):
        def select(self):
            return 1

    result = BatchBanditScheduler(10, 2).run(Oracle(2, seed=0), env)
    assert expected_total_regret(result, env.true_means) == 0.0


def test_regret_positive_for_uniform():
    env = SyntheticBanditEnvironment([0.2, 0.9], seed=10)
    result = BatchBanditScheduler(20, 2).run(UniformRandom(2, seed=1), env)
    regret = cumulative_regret(result, env.true_means)
    assert regret[-1] > 0
    assert all(a <= b + 1e-12 for a, b in zip(regret, regret[1:]))


def test_thompson_beats_uniform_on_regret():
    def total(policy_cls, seed):
        env = SyntheticBanditEnvironment([0.1, 0.5, 0.9], seed=seed)
        result = BatchBanditScheduler(40, 5).run(policy_cls(3, seed=seed + 1), env)
        return expected_total_regret(result, env.true_means)

    ts = np.mean([total(ThompsonSampling, s) for s in range(5)])
    uni = np.mean([total(UniformRandom, s) for s in range(5)])
    assert ts < uni


def test_thompson_robustness_claim():
    """The paper: TS is more robust than softmax/eps-greedy across a wide
    range of settings.  Measured as worst-case regret over instances."""

    instances = [
        [0.9, 0.7, 0.5, 0.3],
        [0.55, 0.5, 0.45, 0.4],
        [0.05, 0.1, 0.15, 0.95],
        [0.2, 0.2, 0.2, 0.25],
    ]

    def worst_case(factory):
        worsts = []
        for probs in instances:
            regrets = []
            for seed in range(4):
                env = SyntheticBanditEnvironment(probs, seed=seed)
                result = BatchBanditScheduler(40, 5).run(factory(4, seed + 1), env)
                regrets.append(expected_total_regret(result, env.true_means))
            worsts.append(np.mean(regrets))
        return max(worsts)

    ts = worst_case(lambda n, s: ThompsonSampling(n, seed=s))
    sm = worst_case(lambda n, s: Softmax(n, temperature=0.1, seed=s))
    eg = worst_case(lambda n, s: EpsilonGreedy(n, epsilon=0.1, seed=s))
    assert ts <= sm * 1.05 or ts <= eg * 1.05  # robust vs at least one
    assert ts < max(sm, eg)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_rewards_bounded(seed):
    env = SyntheticBanditEnvironment([0.3, 0.6, 0.9], seed=seed)
    policy = ThompsonSampling(3, seed=seed)
    result = BatchBanditScheduler(10, 2).run(policy, env)
    assert all(0.0 <= r.reward <= 1.0 for r in result.records)
