"""Cost models (Figs 1-2, 4) and noise characterization (Fig 3)."""

import numpy as np
import pytest

from repro.core.costmodel import (
    CapabilityGapModel,
    CoevolutionModel,
    DesignCostModel,
    DTInnovation,
    RegimeState,
)
from repro.core.noise import NoiseCharacterization, noise_sweep
from repro.eda.flow import FlowOptions


# --------------------------------------------------------------- cost model
def test_footnote1_anchors_within_factor():
    """The paper's footnote 1 numbers, within 25%."""
    anchors = DesignCostModel().footnote1_anchors()
    assert anchors["cost_2013_with_dt"] == pytest.approx(45.4e6, rel=0.25)
    assert anchors["cost_2013_frozen_2000"] == pytest.approx(1.0e9, rel=0.25)
    assert anchors["cost_2028_frozen_2013"] == pytest.approx(3.4e9, rel=0.25)
    assert anchors["cost_2028_frozen_2000"] == pytest.approx(70e9, rel=0.25)


def test_transistor_count_doubles_every_two_years():
    m = DesignCostModel()
    assert m.transistors(2001) / m.transistors(1999) == pytest.approx(2.0)


def test_dt_innovations_reduce_cost():
    m = DesignCostModel()
    assert m.design_cost(2015) < m.design_cost(2015, dt_freeze_year=1990)


def test_cost_explodes_without_dt():
    """Fig 2's divergence: frozen-DT cost grows by orders of magnitude."""
    m = DesignCostModel()
    series = m.figure2_series(range(2000, 2029))
    ratio = series["cost_frozen_2000"][-1] / series["design_cost"][-1]
    assert ratio > 100.0


def test_verification_share(library=None):
    m = DesignCostModel()
    assert m.verification_cost(2015) == pytest.approx(m.design_cost(2015) * 0.45)


def test_cost_model_validation():
    m = DesignCostModel()
    with pytest.raises(ValueError):
        m.design_cost(1900)
    with pytest.raises(ValueError):
        DTInnovation(2000, "nop", 1.0)


# ----------------------------------------------------------- capability gap
def test_gap_grows_over_time():
    g = CapabilityGapModel()
    assert g.gap(2015) > g.gap(2005) >= g.gap(1995)


def test_realized_density_below_available():
    g = CapabilityGapModel()
    for year in (2000, 2010, 2015):
        assert g.realized_density(year) <= g.available_density(year)


def test_figure1_series_keys():
    series = CapabilityGapModel().figure1_series(range(1995, 2016))
    assert set(series) == {"year", "available", "realized", "gap"}
    assert (series["available"] >= series["realized"]).all()
    # both still scale up over 20 years (the gap is relative, not absolute)
    assert series["realized"][-1] > series["realized"][0]


def test_uncore_fraction_bounded():
    g = CapabilityGapModel()
    for year in range(1995, 2030):
        assert 0.0 <= g.uncore_fraction(year) <= g.uncore_ceiling + 1e-9


# -------------------------------------------------------------- coevolution
def test_future_regime_dominates_today():
    today = CoevolutionModel("today").fixed_point()
    future = CoevolutionModel("future", partitions=16).fixed_point()
    assert future.quality > today.quality
    assert future.predictability > today.predictability
    assert future.margin < today.margin


def test_more_partitions_help():
    few = CoevolutionModel("future", partitions=2).fixed_point()
    many = CoevolutionModel("future", partitions=32).fixed_point()
    assert many.quality >= few.quality


def test_fixed_point_is_stable():
    model = CoevolutionModel("today")
    fp = model.fixed_point()
    stepped = model.step(fp)
    assert abs(stepped.quality - fp.quality) < 1e-3


def test_states_stay_in_unit_box():
    model = CoevolutionModel("today")
    for state in model.run(40, RegimeState(1.0, 0.0, 1.0, 0.0)):
        for v in (state.flexibility, state.predictability, state.margin, state.quality):
            assert 0.0 <= v <= 1.0


def test_coevolution_validation():
    with pytest.raises(ValueError):
        CoevolutionModel("past")
    with pytest.raises(ValueError):
        CoevolutionModel("today", partitions=0.5)


# -------------------------------------------------------------------- noise
@pytest.fixture(scope="module")
def sweep(small_spec):
    # bracket the tiny design's wall coarsely; tests only need relative
    # behaviour so a small sweep keeps runtime low
    return noise_sweep(
        small_spec, targets=[0.8, 1.4, 1.9], n_seeds=8,
        base_options=FlowOptions(opt_passes=4),
    )


def test_sweep_structure(sweep):
    assert sweep.n_seeds == 8
    for t in sweep.targets:
        assert len(sweep.runs[t]) == 8
        assert sweep.areas(t).shape == (8,)


def test_noise_grows_toward_wall(sweep):
    noise = NoiseCharacterization(sweep)
    stds = noise.area_std()
    assert stds[-1] >= stds[0]


def test_success_rate_falls_with_target(sweep):
    rates = [sweep.success_rate(t) for t in sweep.targets]
    assert rates[0] >= rates[-1]


def test_aim_low_semantics(sweep):
    noise = NoiseCharacterization(sweep)
    safe = noise.aim_low_target(confidence=0.9)
    assert safe in sweep.targets
    assert sweep.success_rate(safe) >= 0.9
    assert noise.frequency_guardband(0.9) >= 0.0


def test_noise_summary_keys(sweep):
    summary = NoiseCharacterization(sweep).summary()
    assert set(summary) == {
        "n_targets", "n_seeds", "noise_growth_ratio", "gaussian_fraction",
    }


def test_sweep_validation(small_spec):
    with pytest.raises(ValueError):
        noise_sweep(small_spec, targets=[], n_seeds=5)
    with pytest.raises(ValueError):
        noise_sweep(small_spec, targets=[0.5], n_seeds=1)
