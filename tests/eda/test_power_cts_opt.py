"""Power analysis, clock tree synthesis, and the timing optimizer."""

import numpy as np
import pytest

from repro.eda.cts import ClockTreeSynthesizer
from repro.eda.opt import TimingOptimizer
from repro.eda.power import estimate_power, ir_drop_analysis
from repro.eda.timing import GraphSTA


# ------------------------------------------------------------------ power
def test_power_scales_with_frequency(small_netlist, small_placement):
    slow = estimate_power(small_netlist, small_placement, frequency_ghz=0.5)
    fast = estimate_power(small_netlist, small_placement, frequency_ghz=1.0)
    assert fast.dynamic > slow.dynamic
    assert fast.leakage == slow.leakage  # leakage is frequency-independent


def test_power_scales_with_activity(small_netlist, small_placement):
    quiet = estimate_power(small_netlist, small_placement, activity=0.05)
    busy = estimate_power(small_netlist, small_placement, activity=0.5)
    assert busy.dynamic > quiet.dynamic


def test_power_includes_wires_when_placed(small_netlist, small_placement):
    unplaced = estimate_power(small_netlist, None)
    placed = estimate_power(small_netlist, small_placement)
    assert placed.dynamic > unplaced.dynamic


def test_power_total_is_sum(small_netlist, small_placement):
    p = estimate_power(small_netlist, small_placement)
    assert p.total == pytest.approx(p.dynamic + p.leakage + p.clock)


def test_power_validation(small_netlist):
    with pytest.raises(ValueError):
        estimate_power(small_netlist, frequency_ghz=0.0)
    with pytest.raises(ValueError):
        estimate_power(small_netlist, activity=0.0)


def test_ir_drop_map(small_netlist, small_placement):
    power = estimate_power(small_netlist, small_placement)
    drop = ir_drop_analysis(small_netlist, small_placement, power, grid=8)
    assert drop.shape == (8, 8)
    assert drop.min() >= 0.0
    # corners host the pads: zero droop there
    assert drop[0, 0] == 0.0 and drop[-1, -1] == 0.0
    assert power.worst_ir_drop == pytest.approx(float(drop.max()))


def test_ir_drop_grows_with_power(small_netlist, small_placement):
    p_low = estimate_power(small_netlist, small_placement, frequency_ghz=0.2)
    p_high = estimate_power(small_netlist, small_placement, frequency_ghz=2.0)
    low = ir_drop_analysis(small_netlist, small_placement, p_low).max()
    high = ir_drop_analysis(small_netlist, small_placement, p_high).max()
    assert high > low


# -------------------------------------------------------------------- CTS
def test_cts_covers_all_flops(small_netlist, small_placement):
    result = ClockTreeSynthesizer().synthesize(small_netlist, small_placement, seed=1)
    flop_names = {f.name for f in small_netlist.sequential_instances()}
    assert set(result.skews) == flop_names
    assert result.n_buffers > 0
    assert result.buffer_area > 0


def test_cts_effort_reduces_skew(small_netlist, small_placement):
    lazy = ClockTreeSynthesizer(effort=0.0).synthesize(small_netlist, small_placement, seed=2)
    eager = ClockTreeSynthesizer(effort=1.0).synthesize(small_netlist, small_placement, seed=2)
    assert eager.global_skew < lazy.global_skew


def test_cts_validation():
    with pytest.raises(ValueError):
        ClockTreeSynthesizer(effort=2.0)
    with pytest.raises(ValueError):
        ClockTreeSynthesizer(max_cluster=1)


# -------------------------------------------------------------- optimizer
def test_optimizer_fixes_failing_timing(library, small_netlist, small_placement):
    # choose a period that fails before optimization
    sta = GraphSTA()
    base = sta.analyze(small_netlist, small_placement, 1.0)
    # pick a period ~ 90% of the critical path: negative slack
    critical = max(e.arrival for e in base.endpoints.values())
    period = critical * 0.93
    import copy

    from repro.eda.synthesis import synthesize
    # fresh netlist (optimizer mutates)
    nl = synthesize(
        __import__("repro.eda.synthesis", fromlist=["DesignSpec"]).DesignSpec(
            "opt", n_gates=120, n_flops=16, n_inputs=8, n_outputs=8, depth=10, locality=0.8
        ),
        library, effort=0.5, seed=7,
    )
    from repro.eda.floorplan import make_floorplan
    from repro.eda.placement import QuadraticPlacer

    fp = make_floorplan(nl, 0.7)
    pl = QuadraticPlacer().place(nl, fp, seed=3)
    before = sta.analyze(nl, pl, period).wns
    result = TimingOptimizer(max_passes=8).optimize(nl, pl, period, sta, seed=1)
    assert result.final_report.wns > before
    assert result.upsizes + result.vt_swaps > 0
    assert result.area_delta >= 0.0


def test_optimizer_recovers_power_when_met(library):
    from repro.eda.floorplan import make_floorplan
    from repro.eda.placement import QuadraticPlacer
    from repro.eda.synthesis import DesignSpec, synthesize

    nl = synthesize(
        DesignSpec("pr", n_gates=120, n_flops=16, n_inputs=8, n_outputs=8, depth=10),
        library, effort=0.5, seed=8,
    )
    fp = make_floorplan(nl, 0.7)
    pl = QuadraticPlacer().place(nl, fp, seed=3)
    leak_before = nl.total_leakage
    result = TimingOptimizer(max_passes=6).optimize(nl, pl, 5000.0, GraphSTA(), seed=2)
    # huge period: everything has slack, recovery must cut leakage
    assert result.vt_swaps > 0
    assert nl.total_leakage < leak_before
    assert result.final_report.wns >= 0


def test_guardband_forces_extra_work(library):
    from repro.eda.floorplan import make_floorplan
    from repro.eda.placement import QuadraticPlacer
    from repro.eda.synthesis import DesignSpec, synthesize

    spec = DesignSpec("gb", n_gates=120, n_flops=16, n_inputs=8, n_outputs=8, depth=10)

    def run(guardband):
        nl = synthesize(spec, library, effort=0.5, seed=9)
        fp = make_floorplan(nl, 0.7)
        pl = QuadraticPlacer().place(nl, fp, seed=3)
        sta = GraphSTA()
        crit = max(e.arrival for e in sta.analyze(nl, pl, 1000.0).endpoints.values())
        opt = TimingOptimizer(guardband=guardband, max_passes=6, recover_power=False)
        result = opt.optimize(nl, pl, crit * 1.05, sta, seed=4)
        return result.total_ops

    assert run(150.0) > run(0.0)


def test_optimizer_validation():
    with pytest.raises(ValueError):
        TimingOptimizer(max_passes=0)
    with pytest.raises(ValueError):
        TimingOptimizer(guardband=-1.0)
    with pytest.raises(ValueError):
        TimingOptimizer(cells_per_pass=0)
