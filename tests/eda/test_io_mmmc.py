"""Design interchange (Verilog/DEF dialects) and MMMC analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.io import read_def, read_verilog, write_def, write_verilog
from repro.eda.mmmc import (
    DEFAULT_VIEWS,
    AnalysisView,
    MMMCAnalyzer,
    MMMCReport,
)
from repro.eda.netlist import NetlistError
from repro.eda.synthesis import DesignSpec, synthesize
from repro.eda.timing import SLOW, SignoffSTA


# ------------------------------------------------------------------ verilog
def test_verilog_roundtrip_structural(library, small_netlist):
    text = write_verilog(small_netlist)
    parsed = read_verilog(text, library)
    assert parsed.name == small_netlist.name
    assert parsed.stats() == small_netlist.stats()
    assert parsed.clock_net == small_netlist.clock_net
    assert sorted(parsed.primary_outputs) == sorted(small_netlist.primary_outputs)
    for name, inst in small_netlist.instances.items():
        assert parsed.instances[name].cell.name == inst.cell.name
        assert parsed.instances[name].input_nets == inst.input_nets


def test_verilog_contains_expected_sections(small_netlist):
    text = write_verilog(small_netlist)
    assert text.startswith(f"module {small_netlist.name}")
    assert "endmodule" in text
    assert "input pi0;" in text
    assert "// clock: clk" in text


def test_verilog_bad_input_rejected(library):
    with pytest.raises(NetlistError):
        read_verilog("not verilog at all", library)


def test_verilog_unknown_cell_rejected(library, small_netlist):
    text = write_verilog(small_netlist).replace("NAND2_X1_SVT", "NAND9_X1_SVT")
    with pytest.raises(KeyError):
        read_verilog(text, library)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_verilog_roundtrip_any_seed(library, seed):
    spec = DesignSpec("vp", n_gates=40, n_flops=6, n_inputs=5, n_outputs=5, depth=5)
    original = synthesize(spec, library, effort=0.5, seed=seed)
    parsed = read_verilog(write_verilog(original), library)
    assert parsed.stats() == original.stats()


# ---------------------------------------------------------------------- def
def test_def_roundtrip(small_netlist, small_floorplan, small_placement):
    text = write_def(small_placement)
    parsed = read_def(text, small_netlist, small_floorplan)
    for name, (x, y) in small_placement.positions.items():
        px, py = parsed.positions[name]
        assert math.isclose(x, px, abs_tol=1e-3)
        assert math.isclose(y, py, abs_tol=1e-3)
    # same floorplan passed through: HPWL matches
    assert parsed.hpwl() == pytest.approx(small_placement.hpwl(), rel=1e-3)


def test_def_without_floorplan_synthesizes_die(small_netlist, small_placement):
    parsed = read_def(write_def(small_placement), small_netlist)
    assert parsed.floorplan.width == pytest.approx(
        small_placement.floorplan.width, abs=0.01
    )


def test_def_validation(small_netlist, small_placement):
    with pytest.raises(ValueError):
        read_def("garbage", small_netlist)
    text = write_def(small_placement)
    # drop one component
    lines = [l for l in text.splitlines() if not l.strip().startswith("- g0 ")]
    with pytest.raises(ValueError):
        read_def("\n".join(lines), small_netlist)


def test_def_cell_mismatch_rejected(small_netlist, small_placement):
    text = write_def(small_placement)
    g0_cell = small_netlist.instances["g0"].cell.name
    bad = text.replace(f"- g0 {g0_cell}", "- g0 INV_X8_LVT", 1)
    if bad != text:  # only if g0 isn't already that cell
        with pytest.raises(ValueError):
            read_def(bad, small_netlist)


# --------------------------------------------------------------------- mmmc
@pytest.fixture(scope="module")
def mmmc_report(small_netlist, small_placement):
    return MMMCAnalyzer().analyze(small_netlist, small_placement, 1300.0)


def test_mmmc_runs_all_views(mmmc_report):
    assert set(mmmc_report.reports) == {v.name for v in DEFAULT_VIEWS}


def test_mmmc_setup_dominated_by_slow_corner(mmmc_report):
    assert mmmc_report.worst_setup_view == "setup_ss"
    assert mmmc_report.setup_wns == mmmc_report.reports["setup_ss"].wns


def test_mmmc_hold_dominated_by_fast_corner(mmmc_report):
    # early paths are fastest at the fast corner -> hold is tightest there
    assert mmmc_report.reports["hold_ff"].hold_wns <= (
        mmmc_report.reports["typ_tt"].hold_wns
    )
    assert mmmc_report.hold_wns == mmmc_report.reports["hold_ff"].hold_wns


def test_mmmc_merged_endpoint_slack(mmmc_report):
    endpoint = next(iter(mmmc_report.reports["typ_tt"].endpoints))
    merged = mmmc_report.endpoint_worst_slack(endpoint)
    per_view = [
        r.endpoints[endpoint].slack for r in mmmc_report.reports.values()
    ]
    assert merged == min(per_view)
    with pytest.raises(KeyError):
        mmmc_report.endpoint_worst_slack("nope/D")


def test_mmmc_runtime_accumulates(mmmc_report, small_netlist, small_placement):
    single = SignoffSTA(corner=SLOW).analyze(small_netlist, small_placement, 1300.0)
    assert mmmc_report.total_runtime_proxy > single.runtime_proxy


def test_mmmc_clean_flag(small_netlist, small_placement):
    relaxed = MMMCAnalyzer().analyze(small_netlist, small_placement, 5000.0)
    assert relaxed.clean
    brutal = MMMCAnalyzer().analyze(small_netlist, small_placement, 10.0)
    assert not brutal.clean


def test_mmmc_validation():
    with pytest.raises(ValueError):
        MMMCAnalyzer(views=())
    view = AnalysisView("v", SLOW)
    with pytest.raises(ValueError):
        MMMCAnalyzer(views=(view, view))
    with pytest.raises(ValueError):
        AnalysisView("bad", SLOW, engine="spice")


def test_graph_engine_view(small_netlist, small_placement):
    analyzer = MMMCAnalyzer(views=(AnalysisView("g", SLOW, engine="graph"),))
    report = analyzer.analyze(small_netlist, small_placement, 1300.0)
    assert report.reports["g"].engine == "graph"
