"""Routing: global congestion behaviour and detailed-route dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.floorplan import make_floorplan
from repro.eda.placement import QuadraticPlacer
from repro.eda.routing import (
    SUCCESS_DRV_THRESHOLD,
    DetailedRouter,
    GlobalRouter,
)


# ------------------------------------------------------------ global route
def test_global_route_produces_demand(small_placement):
    result = GlobalRouter().route(small_placement, seed=1)
    assert result.demand_h.sum() + result.demand_v.sum() > 0
    assert result.wirelength > 0


def test_congestion_map_shape_and_range(small_congestion):
    assert small_congestion.shape == (16, 16)
    assert small_congestion.min() >= 0.0
    assert np.isfinite(small_congestion).all()


def test_supply_scales_congestion(small_placement):
    rich = GlobalRouter(tracks_per_um=40.0).route(small_placement, seed=1)
    poor = GlobalRouter(tracks_per_um=6.0).route(small_placement, seed=1)
    assert poor.max_congestion > rich.max_congestion
    assert poor.overflow >= rich.overflow


def test_utilization_increases_congestion(small_netlist):
    def max_cong(util):
        fp = make_floorplan(small_netlist, utilization=util)
        pl = QuadraticPlacer().place(small_netlist, fp, seed=2)
        return GlobalRouter().route(pl, seed=3).congestion_map().mean()

    assert max_cong(0.9) > max_cong(0.5)


def test_negotiation_reduces_overflow(small_placement):
    none = GlobalRouter(negotiation_rounds=0, tracks_per_um=8.0).route(small_placement, seed=4)
    some = GlobalRouter(negotiation_rounds=4, tracks_per_um=8.0).route(small_placement, seed=4)
    assert some.overflow <= none.overflow


def test_router_validation():
    with pytest.raises(ValueError):
        GlobalRouter(nx=1)
    with pytest.raises(ValueError):
        GlobalRouter(tracks_per_um=0.0)


# ----------------------------------------------------------- detailed route
def test_easy_map_converges_to_zero():
    cong = np.full((16, 16), 0.6)
    result = DetailedRouter().route(cong, seed=1)
    assert result.final_drvs == 0
    assert result.success


def test_doomed_map_stays_high():
    cong = np.full((16, 16), 1.35)
    result = DetailedRouter().route(cong, seed=1)
    assert result.final_drvs > SUCCESS_DRV_THRESHOLD
    assert not result.success


def test_drv_history_starts_at_seeded_count():
    cong = np.full((8, 8), 1.0)
    result = DetailedRouter(max_iterations=5).route(cong, seed=2)
    assert len(result.drvs_per_iteration) == result.iterations_run + 1
    assert result.initial_drvs == result.drvs_per_iteration[0]


def test_effort_speeds_convergence():
    cong = np.full((16, 16), 0.85)
    lazy = DetailedRouter(effort=0.25, shock_prob=0.0).route(cong, seed=3)
    eager = DetailedRouter(effort=1.0, shock_prob=0.0).route(cong, seed=3)
    assert eager.final_drvs <= lazy.final_drvs


def test_stop_callback_terminates_early():
    cong = np.full((16, 16), 1.3)
    stopped = DetailedRouter(max_iterations=20).route(
        cong, seed=4, stop_callback=lambda hist: len(hist) >= 4
    )
    assert stopped.stopped_early
    assert stopped.iterations_run <= 4
    assert not stopped.success  # stopped runs never count as successes


def test_determinism_given_seed():
    cong = np.full((12, 12), 0.95)
    a = DetailedRouter().route(cong, seed=9)
    b = DetailedRouter().route(cong, seed=9)
    assert a.drvs_per_iteration == b.drvs_per_iteration


def test_seed_changes_trajectory():
    cong = np.full((12, 12), 0.95)
    a = DetailedRouter().route(cong, seed=1)
    b = DetailedRouter().route(cong, seed=2)
    assert a.drvs_per_iteration != b.drvs_per_iteration


def test_metadata_recorded():
    cong = np.full((8, 8), 1.1)
    result = DetailedRouter().route(cong, seed=5)
    assert result.metadata["max_congestion"] == pytest.approx(1.1)
    assert result.metadata["overflow_fraction"] == pytest.approx(1.0)


def test_detailed_router_validation():
    with pytest.raises(ValueError):
        DetailedRouter(max_iterations=0)
    with pytest.raises(ValueError):
        DetailedRouter(effort=0.0)
    with pytest.raises(ValueError):
        DetailedRouter(shock_prob=2.0)
    with pytest.raises(ValueError):
        DetailedRouter().route(np.zeros(5), seed=0)  # 1-D map


@settings(max_examples=10, deadline=None)
@given(
    base=st.floats(min_value=0.3, max_value=1.4, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_drvs_never_negative(base, seed):
    cong = np.full((8, 8), base)
    result = DetailedRouter(max_iterations=8).route(cong, seed=seed)
    assert all(v >= 0 for v in result.drvs_per_iteration)


# ---------------------------------------------------------------------------
# Scatter conservation (the detailed router's spill redistribution)
# ---------------------------------------------------------------------------
from repro.eda.grid import bin_index  # noqa: E402
from repro.eda.routing import GlobalRouteResult, _scatter_to_neighbors  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_scatter_conserves_total_violation_count(seed):
    rng = np.random.default_rng(seed)
    counts = rng.poisson(2.0, size=(7, 5)).astype(float)
    out = _scatter_to_neighbors(counts, np.random.default_rng(seed + 1))
    assert out.sum() == counts.sum()
    assert (out >= 0).all()


def test_scatter_clips_at_grid_edges():
    """Spills off the grid fold back onto the edge cell, not vanish."""
    counts = np.zeros((3, 3))
    counts[0, 0] = 40.0  # corner: left and up draws clip back to row/col 0
    out = _scatter_to_neighbors(counts, np.random.default_rng(9))
    assert out.sum() == 40.0
    # everything lands in the corner's clipped neighborhood
    assert out[0, 0] + out[0, 1] + out[1, 0] == 40.0


def test_scatter_batched_matches_per_cell_loop():
    rng = np.random.default_rng(21)
    counts = rng.poisson(3.0, size=(9, 11)).astype(float)
    fast = _scatter_to_neighbors(counts, np.random.default_rng(5), vectorize=True)
    slow = _scatter_to_neighbors(counts, np.random.default_rng(5), vectorize=False)
    assert np.array_equal(fast, slow)


def test_scatter_empty_grid_is_noop():
    out = _scatter_to_neighbors(np.zeros((4, 4)), np.random.default_rng(0))
    assert out.sum() == 0.0


# ---------------------------------------------------------------------------
# Congestion-map edge-count normalization on degenerate grids
# ---------------------------------------------------------------------------
def _result(nx, ny, demand_h, demand_v, cap=2.0):
    return GlobalRouteResult(
        nx=nx, ny=ny,
        demand_h=np.asarray(demand_h, dtype=float),
        demand_v=np.asarray(demand_v, dtype=float),
        capacity_h=cap, capacity_v=cap, wirelength=0.0,
    )


def test_congestion_map_2x2_averages_both_incident_edges():
    res = _result(2, 2, [[2.0], [4.0]], [[6.0, 8.0]])
    cmap = res.congestion_map()
    # every cell touches exactly one h-edge and one v-edge
    assert cmap.shape == (2, 2)
    assert np.array_equal(cmap, np.array([[(1.0 + 3.0) / 2, (1.0 + 4.0) / 2],
                                          [(2.0 + 3.0) / 2, (2.0 + 4.0) / 2]]))


def test_congestion_map_single_row_normalizes_by_h_edges_only():
    # ny=1: no vertical edges exist; interior cells average two h-edges,
    # corner cells see just one — counts must reflect that, not a fixed 4.
    res = _result(3, 1, [[2.0, 4.0]], np.zeros((0, 3)))
    cmap = res.congestion_map()
    assert np.array_equal(cmap, np.array([[1.0, (1.0 + 2.0) / 2, 2.0]]))


def test_congestion_map_single_column_normalizes_by_v_edges_only():
    res = _result(1, 3, np.zeros((3, 0)), [[2.0], [4.0]])
    cmap = res.congestion_map()
    assert np.array_equal(cmap, np.array([[1.0], [(1.0 + 2.0) / 2], [2.0]]))


# ---------------------------------------------------------------------------
# Gcell binning boundary regression (the shared bin_index bugfix)
# ---------------------------------------------------------------------------
def test_gcell_binning_boundary_points(small_placement):
    """Pads sit exactly on the core edge; they must bin into the last gcell."""
    fp = small_placement.floorplan
    nx = ny = 16
    # IO pads live at x == width / y == height exactly
    for pad in fp.pad_positions.values():
        assert 0 <= bin_index(pad[0], fp.width, nx) <= nx - 1
        assert 0 <= bin_index(pad[1], fp.height, ny) <= ny - 1
    assert bin_index(fp.width, fp.width, nx) == nx - 1
    assert bin_index(fp.height, fp.height, ny) == ny - 1
    assert bin_index(0.0, fp.width, nx) == 0


def test_router_segments_use_shared_binning(small_placement):
    """Every segment endpoint the router produces is a legal gcell index —
    including the ones anchored on edge pads — and the scalar and fast
    segment builders agree with the shared bin rule."""
    router = GlobalRouter(nx=11, ny=13)
    fp = small_placement.floorplan
    segs = router._segments_scalar(small_placement)
    assert segs == router._segments_fast(small_placement)
    for ia, ja, ib, jb in segs:
        assert 0 <= ia < 11 and 0 <= ib < 11
        assert 0 <= ja < 13 and 0 <= jb < 13
