"""Steiner wire models, hold analysis, buffer insertion and hold fixing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.library import make_default_library
from repro.eda.netlist import Netlist, NetlistError
from repro.eda.opt import TimingOptimizer
from repro.eda.steiner import (
    hpwl_length,
    net_length,
    rmst_length,
    rsmt_length,
    total_wirelength,
)
from repro.eda.timing import GraphSTA, SignoffSTA


# ------------------------------------------------------------------ steiner
def test_two_pin_net_all_models_agree():
    pts = [(0.0, 0.0), (3.0, 4.0)]
    assert hpwl_length(pts) == rmst_length(pts) == rsmt_length(pts) == 7.0


def test_cross_net_steiner_beats_mst():
    # "plus" configuration: the Hanan point (5,5) joins all four pins
    # at cost 20 while the MST needs 30
    pts = [(5, 0), (0, 5), (10, 5), (5, 10)]
    assert rmst_length(pts) == 30.0
    assert rsmt_length(pts) == 20.0
    assert rsmt_length(pts) >= hpwl_length(pts)


def test_degenerate_inputs():
    assert hpwl_length([]) == 0.0
    assert rmst_length([(1.0, 1.0)]) == 0.0
    assert rsmt_length([(1.0, 1.0)]) == 0.0


def test_collinear_points_exact():
    pts = [(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]
    assert rmst_length(pts) == 10.0
    assert rsmt_length(pts) == 10.0


def test_placement_integration(small_placement):
    clock = small_placement.netlist.clock_net
    some_net = next(
        n for n, net in small_placement.netlist.nets.items()
        if n != clock and len(net.sinks) >= 2
    )
    h = net_length(small_placement, some_net, "hpwl")
    s = net_length(small_placement, some_net, "rsmt")
    m = net_length(small_placement, some_net, "rmst")
    assert h <= s + 1e-9 <= m + 1e-9
    with pytest.raises(ValueError):
        net_length(small_placement, some_net, "flute")


def test_total_wirelength_ordering(small_placement):
    assert (
        total_wirelength(small_placement, "hpwl")
        <= total_wirelength(small_placement, "rsmt") + 1e-6
        <= total_wirelength(small_placement, "rmst") + 1e-6
    )


@settings(max_examples=25, deadline=None)
@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=2,
        max_size=7,
    )
)
def test_property_wire_model_bounds(points):
    """HPWL <= RSMT <= RMST for any pin set."""
    h = hpwl_length(points)
    s = rsmt_length(points)
    m = rmst_length(points)
    assert h <= s + 1e-6
    assert s <= m + 1e-6


# -------------------------------------------------------------------- hold
def _skewed_setup(library):
    """Deterministic hold hazard: ff0 -> INV -> ff1, ff1 captures 120ps late."""
    from repro.eda.floorplan import Floorplan
    from repro.eda.placement import Placement

    nl = Netlist("hold", library)
    nl.add_primary_input("a")
    clk = nl.add_primary_input("clk")
    nl.set_clock(clk.name)
    ff0 = nl.add_instance("ff0", library.pick("DFF"), ["a", "clk"])
    g0 = nl.add_instance("g0", library.pick("INV"), [ff0.output_net])
    nl.add_instance("ff1", library.pick("DFF"), [g0.output_net, "clk"])
    nl.mark_primary_output(g0.output_net)
    nl.validate()
    fp = Floorplan(width=10.0, height=10.0, utilization=0.5)
    fp.pad_positions["a"] = (0.0, 5.0)
    fp.pad_positions[g0.output_net] = (10.0, 5.0)
    pl = Placement(nl, fp, {"ff0": (2.0, 5.0), "g0": (3.0, 5.0), "ff1": (4.0, 5.0)})
    skews = {"ff0": 0.0, "ff1": 120.0}
    return nl, pl, skews


def test_hold_not_checked_by_default(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, 1500.0)
    assert report.hold_wns == float("inf")
    assert report.n_hold_violations == 0


def test_hold_clean_without_skew(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, 1500.0, check_hold=True)
    assert report.hold_wns > 0  # clk-to-q alone exceeds the hold time
    assert report.n_hold_violations == 0


def test_hostile_skew_creates_hold_violations(library):
    nl, pl, skews = _skewed_setup(library)
    report = GraphSTA().analyze(nl, pl, 1500.0, skews=skews, check_hold=True)
    assert report.n_hold_violations > 0
    assert report.hold_wns < 0


def test_signoff_hold_more_pessimistic(library):
    nl, pl, skews = _skewed_setup(library)
    graph = GraphSTA().analyze(nl, pl, 1500.0, skews=skews, check_hold=True)
    signoff = SignoffSTA(pba=False).analyze(nl, pl, 1500.0, skews=skews, check_hold=True)
    # the early derate makes min arrivals earlier -> hold looks worse
    assert signoff.hold_wns <= graph.hold_wns + 1e-9


def test_fix_hold_closes_violations(library):
    nl, pl, skews = _skewed_setup(library)
    before = GraphSTA().analyze(nl, pl, 1500.0, skews=skews, check_hold=True)
    inserted = TimingOptimizer().fix_hold(nl, pl, 1500.0, GraphSTA(), skews=skews)
    assert inserted > 0
    after = GraphSTA().analyze(nl, pl, 1500.0, skews=skews, check_hold=True)
    assert after.n_hold_violations == 0
    assert after.hold_wns >= 0
    # hold buffers must not break setup at this relaxed period, and the
    # padded flop's setup slack must have shrunk (padding slows its path)
    assert after.wns > 0
    assert after.endpoints["ff1/D"].slack < before.endpoints["ff1/D"].slack
    nl.validate()


def test_fix_hold_respects_buffer_budget(library):
    nl, pl, skews = _skewed_setup(library)
    with pytest.raises(RuntimeError):
        TimingOptimizer().fix_hold(nl, pl, 1500.0, GraphSTA(), skews=skews, max_buffers=1)
    with pytest.raises(ValueError):
        TimingOptimizer().fix_hold(nl, pl, 1500.0, GraphSTA(), skews=skews, max_buffers=0)


# --------------------------------------------------------- buffer insertion
def test_insert_buffer_rewires_correctly(library):
    nl = Netlist("buf", library)
    nl.add_primary_input("a")
    clk = nl.add_primary_input("clk")
    nl.set_clock(clk.name)
    g0 = nl.add_instance("g0", library.pick("INV"), ["a"])
    g1 = nl.add_instance("g1", library.pick("INV"), [g0.output_net])
    buf = nl.insert_buffer("b0", library.pick("BUF"), g0.output_net, "g1", 0)
    nl.validate()
    assert nl.instances["g1"].input_nets[0] == buf.output_net
    assert ("g1", 0) not in nl.nets[g0.output_net].sinks
    assert ("b0", 0) in nl.nets[g0.output_net].sinks
    assert nl.logic_depth() == 3


def test_insert_buffer_validation(library):
    nl = Netlist("buf2", library)
    nl.add_primary_input("a")
    g0 = nl.add_instance("g0", library.pick("INV"), ["a"])
    with pytest.raises(NetlistError):
        nl.insert_buffer("b", library.pick("NAND2"), "a", "g0", 0)  # 2-input cell
    with pytest.raises(NetlistError):
        nl.insert_buffer("b", library.pick("BUF"), "nope", "g0", 0)
    with pytest.raises(NetlistError):
        nl.insert_buffer("b", library.pick("BUF"), g0.output_net, "g0", 0)  # not a sink
