"""The staged pipeline: equivalence with the monolith, prefix keys,
and the stage cache.

The tentpole contract is *bit-identity*: decomposing ``SPRFlow`` into
stages must not change a single field of any ``FlowResult`` — fresh or
resumed from a cached prefix — so every test here compares against
:class:`tests.eda.monolith_reference.MonolithicSPRFlow`, a frozen
verbatim copy of the pre-refactor flow body.
"""

import copy

import pytest

from repro.eda.flow import FlowOptions, SPRFlow
from repro.eda.stages import (
    FULL_FLOW_STAGES,
    IMPLEMENT_STAGES,
    StageCache,
    StageReport,
    execute_pipeline,
    plan_stages,
    run_flow_job_staged,
    stage_prefix_keys,
)

from tests.eda.monolith_reference import MonolithicSPRFlow


OPTION_POINTS = [
    FlowOptions(),
    FlowOptions(target_clock_ghz=0.5, synth_effort=0.8, utilization=0.6),
    FlowOptions(router_effort=0.9, router_max_iterations=30, opt_passes=3,
                power_recovery=False),
]


# --------------------------------------------------- fresh equivalence
@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("options", OPTION_POINTS)
def test_staged_run_matches_monolith(small_spec, options, seed):
    staged = SPRFlow().run(small_spec, options, seed=seed)
    golden = MonolithicSPRFlow().run(small_spec, options, seed=seed)
    assert staged == golden  # every QoR field, every StepLog, runtime_proxy
    assert staged.log_text() == golden.log_text()


@pytest.mark.parametrize("seed", [0, 11])
def test_staged_implement_matches_monolith(small_netlist, seed):
    options = FlowOptions(target_clock_ghz=0.5)
    # implementation mutates the netlist in place -> one copy per run
    staged = SPRFlow().implement(copy.deepcopy(small_netlist), options, seed=seed)
    golden = MonolithicSPRFlow().implement(
        copy.deepcopy(small_netlist), options, seed=seed)
    assert staged == golden


def test_stage_structure():
    assert [s.name for s in FULL_FLOW_STAGES] == [
        "synth", "floorplan", "place", "cts", "groute", "opt", "droute_signoff",
    ]
    assert FULL_FLOW_STAGES[1:] == IMPLEMENT_STAGES
    assert all(s.cacheable for s in FULL_FLOW_STAGES[:-1])
    assert not FULL_FLOW_STAGES[-1].cacheable  # droute+signoff is terminal
    # every declared knob is a real FlowOptions field, and every stage
    # can extract its subset
    fields = set(FlowOptions().to_dict())
    for stage in FULL_FLOW_STAGES:
        assert set(stage.knobs) <= fields
        assert set(stage.knob_values(FlowOptions())) == set(stage.knobs)


def test_plan_stages_entry_kinds(small_spec, small_netlist):
    kind, stages, seeds = plan_stages(small_spec, 3)
    assert kind == "spec" and stages == FULL_FLOW_STAGES
    assert [len(s) for s in seeds] == [1, 0, 2, 1, 1, 1, 1]
    kind, stages, seeds = plan_stages(small_netlist, 3)
    assert kind == "netlist" and stages == IMPLEMENT_STAGES
    assert [len(s) for s in seeds] == [0, 2, 1, 1, 1, 1]


# ------------------------------------------------------- prefix keys
def keys_by_stage(design, options, seed):
    """Map stage name -> prefix key (keys are positional per stage)."""
    _, stages, _ = plan_stages(design, seed)
    return dict(zip((s.name for s in stages),
                    stage_prefix_keys(design, options, seed)))


def test_prefix_keys_stable_and_seed_sensitive(small_spec):
    base = stage_prefix_keys(small_spec, FlowOptions(), 3)
    assert base == stage_prefix_keys(small_spec, FlowOptions(), 3)
    assert len(base) == len(FULL_FLOW_STAGES)
    assert len(set(base)) == len(base)
    other = stage_prefix_keys(small_spec, FlowOptions(), 4)
    # a new seed changes every stage's derived step seeds -> every key
    assert all(k1 != k2 for k1, k2 in zip(base, other))


def test_prefix_keys_downstream_knob_preserves_prefix(small_spec):
    base = keys_by_stage(small_spec, FlowOptions(), 3)
    routed = keys_by_stage(
        small_spec, FlowOptions(router_effort=0.9, router_max_iterations=30), 3)
    # router knobs first enter at droute_signoff: the whole cacheable
    # prefix is shared
    for stage in ("synth", "floorplan", "place", "cts", "groute", "opt"):
        assert base[stage] == routed[stage]
    assert base["droute_signoff"] != routed["droute_signoff"]


def test_prefix_keys_upstream_knob_invalidates_suffix(small_spec):
    base = keys_by_stage(small_spec, FlowOptions(), 3)
    fat = keys_by_stage(small_spec, FlowOptions(utilization=0.6), 3)
    assert base["synth"] == fat["synth"]  # synthesis doesn't see utilization
    for stage in ("floorplan", "place", "cts", "groute", "opt", "droute_signoff"):
        assert base[stage] != fat[stage]


def test_prefix_keys_target_enters_at_opt(small_spec):
    base = keys_by_stage(small_spec, FlowOptions(), 3)
    slow = keys_by_stage(small_spec, FlowOptions(target_clock_ghz=0.4), 3)
    for stage in ("synth", "floorplan", "place", "cts", "groute"):
        assert base[stage] == slow[stage]
    assert base["opt"] != slow["opt"]


# -------------------------------------------------- prefix-resume runs
def test_resume_from_cached_prefix_is_bit_identical(small_spec):
    cache = StageCache()
    base = FlowOptions()
    report_a = StageReport()
    first = execute_pipeline(small_spec, base, 3, cache=cache, report=report_a)
    assert report_a.hit_stages == []
    assert report_a.run_stages == [s.name for s in FULL_FLOW_STAGES]

    # suffix-only change: resumes after the deepest shared stage (opt);
    # hit_stages lists every stage the resumed prefix covers
    routed = base.with_(router_effort=0.9, router_max_iterations=30)
    report_b = StageReport()
    resumed = execute_pipeline(small_spec, routed, 3, cache=cache, report=report_b)
    assert report_b.hit_stages == [s.name for s in FULL_FLOW_STAGES[:-1]]
    assert report_b.run_stages == ["droute_signoff"]
    assert resumed == MonolithicSPRFlow().run(small_spec, routed, seed=3)
    assert first == MonolithicSPRFlow().run(small_spec, base, seed=3)

    # mid-flow change: resumes from the groute prefix
    report_c = StageReport()
    slow = base.with_(target_clock_ghz=0.4)
    resumed = execute_pipeline(small_spec, slow, 3, cache=cache, report=report_c)
    assert report_c.hit_stages == ["synth", "floorplan", "place", "cts", "groute"]
    assert report_c.run_stages == ["opt", "droute_signoff"]
    assert resumed == MonolithicSPRFlow().run(small_spec, slow, seed=3)


def test_resumed_result_carries_its_own_identity(small_spec):
    """A result resumed from another job's prefix must report the
    resuming job's options, not the creating job's."""
    cache = StageCache()
    base = FlowOptions()
    execute_pipeline(small_spec, base, 3, cache=cache)
    routed = base.with_(router_effort=0.9)
    resumed = execute_pipeline(small_spec, routed, 3, cache=cache,
                               report=(report := StageReport()))
    assert report.n_hits >= 1
    assert resumed.options == routed
    assert resumed.seed == 3
    assert resumed.design == small_spec.name


def test_repeat_job_reruns_only_the_uncacheable_suffix(small_spec):
    cache = StageCache()
    report = StageReport()
    first = execute_pipeline(small_spec, FlowOptions(), 3, cache=cache)
    again = execute_pipeline(small_spec, FlowOptions(), 3, cache=cache,
                             report=report)
    # resumed from the deepest cacheable prefix (through opt)
    assert report.hit_stages == [s.name for s in FULL_FLOW_STAGES[:-1]]
    assert report.run_stages == ["droute_signoff"]
    assert again == first
    # delivered runtime_proxy is the full flow; executed is the suffix
    assert again.runtime_proxy > report.executed_proxy > 0


def test_resume_with_report_only_executed_accounting(small_spec):
    report = StageReport()
    result = execute_pipeline(small_spec, FlowOptions(), 3, report=report)
    # no cache: everything executed, accounting matches the result
    assert report.executed_proxy == pytest.approx(result.runtime_proxy)


def test_run_flow_job_staged_without_global_cache(small_spec):
    outcome = run_flow_job_staged(small_spec, FlowOptions(), 3)
    assert outcome.report.n_hits == 0
    assert outcome.result == MonolithicSPRFlow().run(small_spec, FlowOptions(), seed=3)


# --------------------------------------------------------- StageCache
def test_stage_cache_counts_and_lru(small_spec):
    cache = StageCache(max_entries=2)
    base = FlowOptions()
    execute_pipeline(small_spec, base, 3, cache=cache)
    # only 2 of the 6 cacheable prefixes survive under max_entries=2
    assert len(cache) == 2
    assert cache.puts == 6
    report = StageReport()
    execute_pipeline(small_spec, base, 3, cache=cache, report=report)
    # the deepest prefix (through opt) survived: LRU keeps the latest puts
    assert report.hit_stages[-1] == "opt"
    assert report.run_stages == ["droute_signoff"]


def test_stage_cache_isolation_between_jobs(small_spec):
    """Cached states are deepcopied both ways: a later job mutating its
    netlist (the optimizer resizes cells in place) must not corrupt the
    cached prefix another job will resume from."""
    cache = StageCache()
    base = FlowOptions()
    golden = execute_pipeline(small_spec, base.with_(opt_passes=12), 3)
    execute_pipeline(small_spec, base, 3, cache=cache)
    # two different opt suffixes resumed from the same groute prefix
    heavy = execute_pipeline(small_spec, base.with_(opt_passes=12), 3, cache=cache)
    light = execute_pipeline(small_spec, base.with_(opt_passes=3), 3, cache=cache)
    assert heavy == golden  # first resume didn't see a corrupted prefix
    assert light == MonolithicSPRFlow().run(
        small_spec, base.with_(opt_passes=3), seed=3)
    assert heavy != light


def test_stage_cache_hit_miss_counters(small_spec):
    cache = StageCache()
    execute_pipeline(small_spec, FlowOptions(), 3, cache=cache)
    assert sum(cache.misses.values()) > 0 and sum(cache.hits.values()) == 0
    execute_pipeline(small_spec, FlowOptions(router_effort=0.9), 3, cache=cache)
    assert cache.hits.get("opt") == 1
    cache.clear()
    assert len(cache) == 0


def test_stage_cache_round_trips_ndarray_backed_timing_state(small_spec):
    """Cached prefixes now carry numpy struct-of-arrays timing state.

    The opt stage leaves a live vectorized ``TimingGraph`` (array-backed
    arrival/slew maps, an id-keyed cell-attribute registry, a lazy SoA
    topology) in the snapshot; deep-copying it on put/get must produce a
    kernel that keeps answering incremental queries bit-identically —
    including after cell swaps, which stress the copied registry.
    """
    from repro.eda.sta import GraphSTA

    cache = StageCache()
    base = FlowOptions()
    execute_pipeline(small_spec, base, 3, cache=cache)
    opt_key = stage_prefix_keys(small_spec, base, 3)[-2]  # prefix through opt
    cached_state = cache.get(opt_key, "opt")
    assert cached_state is not None
    graph = cached_state.timing_graph
    assert graph is not None
    # the copied kernel aliases the copied netlist, not the original
    assert graph.netlist is cached_state.netlist
    nl, pl = cached_state.netlist, cached_state.placement
    want = GraphSTA().analyze(nl, pl, 1100.0, graph.skews,
                              check_hold=graph.check_hold)
    got = graph.report(1100.0)
    assert list(got.endpoints) == list(want.endpoints)
    for name in got.endpoints:
        assert got.endpoints[name].slack == want.endpoints[name].slack
        assert got.endpoints[name].arrival == want.endpoints[name].arrival
    # a cell swap through the copied graph: the id-keyed attribute
    # registry must not confuse copied cells with the originals
    comb = next(n for n, i in nl.instances.items()
                if not i.cell.is_sequential)
    from repro.eda.library import DRIVE_STRENGTHS

    cell = nl.instances[comb].cell
    idx = DRIVE_STRENGTHS.index(cell.drive)
    new_drive = DRIVE_STRENGTHS[idx + 1 if idx + 1 < len(DRIVE_STRENGTHS)
                                else idx - 1]
    nl.replace_cell(comb, nl.library.resize(cell, new_drive))
    graph.update([comb])
    scratch = GraphSTA().analyze(nl, pl, 1100.0, graph.skews,
                                 check_hold=graph.check_hold)
    updated = graph.report(1100.0)
    for name in updated.endpoints:
        assert updated.endpoints[name].slack == scratch.endpoints[name].slack


def test_external_synth_log_disables_caching(small_spec, small_netlist):
    """Partition flows pass a pre-built synth log; those results must
    never be served from (or into) the stage cache."""
    from repro.eda.flow import StepLog

    cache = StageCache()
    log = StepLog("synth", {"gates": 1.0}, runtime_proxy=5.0)
    report = StageReport()
    execute_pipeline(small_netlist, FlowOptions(), 3, synth_log=log,
                     cache=cache, report=report)
    assert len(cache) == 0
    assert report.n_hits == 0
