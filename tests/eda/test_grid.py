"""The shared gcell/bin index helper and its three call sites.

``Placement.density_map``, the STA kernel's congestion lookup and
``congestion_net_weights`` historically each hand-rolled the
coordinate-to-bin computation with subtly different expressions; now
all three go through :mod:`repro.eda.grid`.  These tests pin the
helper's semantics (floor, clamp, scalar/vector agreement) and verify
the three layers bin identically on random points including the
boundary cases that used to diverge.
"""

import math

import numpy as np
import pytest

from repro.eda.grid import bin_index, bin_indices


# ------------------------------------------------------------ the helper
def test_bin_index_basics():
    assert bin_index(0.0, 100.0, 10) == 0
    assert bin_index(9.999, 100.0, 10) == 0
    assert bin_index(10.0, 100.0, 10) == 1
    assert bin_index(99.999, 100.0, 10) == 9
    # clamped on both sides
    assert bin_index(-5.0, 100.0, 10) == 0
    assert bin_index(100.0, 100.0, 10) == 9
    assert bin_index(1e9, 100.0, 10) == 9


def test_bin_index_validation():
    with pytest.raises(ValueError):
        bin_index(1.0, 100.0, 0)
    with pytest.raises(ValueError):
        bin_index(1.0, 0.0, 4)
    with pytest.raises(ValueError):
        bin_indices(np.array([1.0]), 100.0, 0)
    with pytest.raises(ValueError):
        bin_indices(np.array([1.0]), -1.0, 4)


def test_bin_indices_matches_scalar_on_random_and_edge_points():
    rng = np.random.default_rng(42)
    extent, n_bins = 537.25, 16
    coords = np.concatenate([
        rng.uniform(-10.0, extent + 10.0, size=500),
        # exact bin boundaries — where truncate-vs-floor variants differed
        np.arange(n_bins + 1) / n_bins * extent,
        np.array([0.0, extent, np.nextafter(extent, 0.0), -0.0]),
    ])
    vec = bin_indices(coords, extent, n_bins)
    for c, v in zip(coords, vec):
        assert bin_index(float(c), extent, n_bins) == int(v), c


def test_bin_index_matches_historical_truncation_form():
    # the old sites truncated toward zero (int()); with clamping that is
    # indistinguishable from floor for every real input
    rng = np.random.default_rng(7)
    extent, n_bins = 100.0, 12
    for c in rng.uniform(-20.0, 140.0, size=400):
        old = min(n_bins - 1, max(0, int(c / extent * n_bins)))
        assert bin_index(float(c), extent, n_bins) == old


# ----------------------------------------------- the three layers agree
def _sta_bin(graph, x, y):
    ny, nx = graph.congestion.shape
    fp = graph.placement.floorplan
    return bin_index(y, fp.height, ny), bin_index(x, fp.width, nx)


def test_density_sta_and_congestion_weights_bin_identically(
    small_netlist, small_placement, small_congestion
):
    """One coordinate, one bin — no matter which layer asks.

    Drives all three call sites through placements whose cells sit on
    random points *and* exact gcell boundaries, and checks each layer's
    observable against the shared helper's answer.
    """
    from repro.eda.congestion import congestion_net_weights
    from repro.eda.sta import GraphSTA

    fp = small_placement.floorplan
    ny, nx = small_congestion.shape
    rng = np.random.default_rng(3)

    names = list(small_placement.positions)
    points = [
        (float(rng.uniform(0, fp.width)), float(rng.uniform(0, fp.height)))
        for _ in names
    ]
    # pin some cells to exact bin boundaries (including the far corner)
    for k, name in enumerate(names[: nx + 1]):
        points[k] = (k / nx * fp.width, min(k, ny) / ny * fp.height)
    placement = type(small_placement)(
        small_netlist, fp, dict(zip(names, points))
    )

    # density_map: a single cell's area must land in the helper's bin
    grid_nx = grid_ny = 8
    for name in names[: nx + 2]:
        x, y = placement.positions[name]
        solo = type(small_placement)(small_netlist, fp, dict(placement.positions))
        dmap = solo.density_map(grid_nx, grid_ny)
        i = bin_index(x, fp.width, grid_nx)
        j = bin_index(y, fp.height, grid_ny)
        assert dmap[j, i] > 0.0 or math.isclose(
            small_netlist.instances[name].cell.area, 0.0
        )

    # STA congestion lookup: _congestion_at reads the helper's gcell
    graph = GraphSTA().build_graph(
        small_netlist, placement, congestion=small_congestion
    )
    for net_name, net in small_netlist.nets.items():
        if net.driver is None:
            continue
        x, y = placement.positions[net.driver]
        j, i = _sta_bin(graph, x, y)
        assert graph._congestion_at(net_name) == float(small_congestion[j, i])

    # congestion_net_weights: a net's worst congestion is the max over
    # the helper-binned bbox of its pins
    weights = congestion_net_weights(placement, small_congestion, alpha=2.0)
    for net_name, weight in weights.items():
        net = small_netlist.nets[net_name]
        pts = []
        if net.driver is not None:
            pts.append(placement.positions[net.driver])
        pts += [placement.positions[s] for s, _ in net.sinks]
        pad = fp.pad_positions.get(net_name)
        if pad is not None:
            pts.append(pad)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        i0, i1 = bin_index(min(xs), fp.width, nx), bin_index(max(xs), fp.width, nx)
        j0, j1 = bin_index(min(ys), fp.height, ny), bin_index(max(ys), fp.height, ny)
        worst = float(small_congestion[j0 : j1 + 1, i0 : i1 + 1].max())
        assert weight == 1.0 + 2.0 * max(0.0, worst - 0.9)


def test_gcell_indices_matches_scalar_on_boundary_and_interior_points():
    from repro.eda.grid import gcell_indices

    rng = np.random.default_rng(13)
    width, height, nx, ny = 23.7, 17.1, 11, 7
    xs = np.concatenate([
        rng.uniform(-1.0, width + 1.0, 200),
        np.array([0.0, width, width / 2, -0.25]),
        np.arange(nx) * width / nx,  # bin edges
    ])
    ys = np.concatenate([
        rng.uniform(-1.0, height + 1.0, 200),
        np.array([height, 0.0, -0.5, height / 3]),
        np.arange(nx) * height / nx,
    ])
    ii, jj = gcell_indices(xs, ys, width, height, nx, ny)
    for k in range(xs.shape[0]):
        assert ii[k] == bin_index(float(xs[k]), width, nx)
        assert jj[k] == bin_index(float(ys[k]), height, ny)
    assert ii.min() >= 0 and ii.max() <= nx - 1
    assert jj.min() >= 0 and jj.max() <= ny - 1
