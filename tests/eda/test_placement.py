"""Placement: legality, quality, annealer behaviour."""

import numpy as np
import pytest

from repro.eda.floorplan import make_floorplan
from repro.eda.placement import AnnealingRefiner, Placement, QuadraticPlacer


def test_placement_is_legal(small_placement):
    small_placement.validate()


def test_all_instances_placed(small_netlist, small_placement):
    assert set(small_placement.positions) == set(small_netlist.instances)


def test_no_two_cells_share_a_site(small_placement):
    positions = list(small_placement.positions.values())
    assert len(set(positions)) == len(positions)


def test_hpwl_positive_and_finite(small_placement):
    hpwl = small_placement.hpwl()
    assert np.isfinite(hpwl) and hpwl > 0


def test_quadratic_beats_random_placement(small_netlist, small_floorplan, rng):
    qp = QuadraticPlacer().place(small_netlist, small_floorplan, seed=1)
    random_positions = {
        name: (
            float(rng.uniform(0, small_floorplan.width)),
            float(rng.uniform(0, small_floorplan.height)),
        )
        for name in small_netlist.instances
    }
    random_pl = Placement(small_netlist, small_floorplan, random_positions)
    assert qp.hpwl() < random_pl.hpwl()


def test_annealer_improves_hpwl(small_netlist, small_floorplan):
    pl = QuadraticPlacer().place(small_netlist, small_floorplan, seed=2)
    before = pl.hpwl()
    after = AnnealingRefiner(moves_per_cell=15).refine(pl, seed=3)
    assert after <= before
    assert after == pytest.approx(pl.hpwl())
    pl.validate()


def test_annealer_seed_dependence(small_netlist, small_floorplan):
    """Different seeds land in different solutions: the noise source."""
    results = set()
    for seed in range(3):
        pl = QuadraticPlacer().place(small_netlist, small_floorplan, seed=7)
        results.add(round(AnnealingRefiner(moves_per_cell=10).refine(pl, seed=seed), 6))
    assert len(results) > 1


def test_annealer_deterministic_given_seed(small_netlist, small_floorplan):
    outs = []
    for _ in range(2):
        pl = QuadraticPlacer().place(small_netlist, small_floorplan, seed=7)
        outs.append(AnnealingRefiner(moves_per_cell=10).refine(pl, seed=5))
    assert outs[0] == outs[1]


def test_net_length_consistency(small_placement):
    total = sum(
        small_placement.net_length(n)
        for n in small_placement.netlist.nets
        if n != small_placement.netlist.clock_net
    )
    assert total == pytest.approx(small_placement.hpwl(), rel=1e-9)


def test_density_map_sums_to_total_area(small_netlist, small_placement):
    grid = small_placement.density_map(8, 8)
    fp = small_placement.floorplan
    bin_area = (fp.width / 8) * (fp.height / 8)
    assert grid.sum() * bin_area == pytest.approx(small_netlist.total_area, rel=1e-6)


def test_density_map_validation(small_placement):
    with pytest.raises(ValueError):
        small_placement.density_map(0, 4)


def test_validate_catches_missing_instance(small_netlist, small_floorplan):
    pl = Placement(small_netlist, small_floorplan, {})
    with pytest.raises(ValueError):
        pl.validate()


def test_validate_catches_off_core(small_netlist, small_floorplan):
    pl = QuadraticPlacer().place(small_netlist, small_floorplan, seed=1)
    name = next(iter(pl.positions))
    pl.positions[name] = (-5.0, 0.0)
    with pytest.raises(ValueError):
        pl.validate()


def test_spread_strength_validation():
    with pytest.raises(ValueError):
        QuadraticPlacer(spread_strength=1.5)


def test_annealer_validation():
    with pytest.raises(ValueError):
        AnnealingRefiner(moves_per_cell=0)


def test_clock_net_excluded_from_hpwl(small_netlist, small_placement):
    """The clock net reaches every flop; HPWL must not count it."""
    clock = small_netlist.clock_net
    assert clock is not None
    assert small_placement.net_length(clock) >= 0.0  # can be queried
    # but the total excludes it
    with_clock = small_placement.hpwl() + small_placement.net_length(clock)
    assert with_clock > small_placement.hpwl()


# ---------------------------------------------------------------------------
# Anneal cooling schedule (the decay-after-evaluation bugfix)
# ---------------------------------------------------------------------------
def test_anneal_schedule_pins_first_and_last_temperature(
    small_netlist, small_floorplan
):
    """The first evaluated move runs at exactly t_start (the historical
    schedule decayed before the first acceptance test), the last evaluated
    move runs just above t_end, and skipped ``a == b`` draws neither
    evaluate nor cool."""
    placement = QuadraticPlacer().place(small_netlist, small_floorplan, seed=3)
    refiner = AnnealingRefiner(moves_per_cell=4, t_start=3.5, t_end=0.07)
    refiner.refine(placement, seed=11)
    sched = refiner.last_schedule
    assert sched is not None
    assert sched.first_temperature == 3.5
    n = len(small_netlist.instances)
    n_moves = 4 * n
    cool = (0.07 / 3.5) ** (1.0 / (n_moves - 1))
    # the k-th evaluated move runs at t_start * cool**(k-1); skips do not
    # cool, so the last evaluated temperature sits at or above t_end
    assert sched.last_temperature == pytest.approx(
        3.5 * cool ** (sched.n_evaluated - 1)
    )
    assert sched.last_temperature >= 0.07 * (1.0 - 1e-12)
    assert 0 < sched.n_evaluated <= n_moves


def test_anneal_schedule_identical_across_kernels(small_netlist, small_floorplan):
    base = QuadraticPlacer().place(small_netlist, small_floorplan, seed=5)
    import copy

    fast = AnnealingRefiner(moves_per_cell=3, vectorize=True)
    slow = AnnealingRefiner(moves_per_cell=3, vectorize=False)
    fast.refine(copy.deepcopy(base), seed=2)
    slow.refine(copy.deepcopy(base), seed=2)
    assert fast.last_schedule == slow.last_schedule


# ---------------------------------------------------------------------------
# Pad-presence predicates (the ``pad is not None`` normalization)
# ---------------------------------------------------------------------------
def test_pad_presence_checks_use_is_not_none():
    """Lint-adjacent: no placement/routing/congestion code may test a pad
    by truthiness — ``(0.0, 0.0)`` is a legal pad position and must count
    as present.  Every bare ``pad`` used as a condition is a bug."""
    import ast
    import inspect

    from repro.eda import congestion, placement, routing

    def bare_pad_conditions(module):
        tree = ast.parse(inspect.getsource(module))
        hits = []
        for node in ast.walk(tree):
            tests = []
            if isinstance(node, (ast.If, ast.IfExp)):
                tests.append(node.test)
            elif isinstance(node, ast.BoolOp):
                tests.extend(node.values)
            for t in tests:
                if isinstance(t, ast.Name) and t.id == "pad":
                    hits.append(t.lineno)
        return hits

    for module in (placement, routing, congestion):
        assert bare_pad_conditions(module) == [], module.__name__
