"""Property-style checks for the incremental STA kernel.

The contract under test: after any supported edit sequence (cell
swaps, buffer splices), ``TimingGraph.update(changed)`` followed by
``report()`` is **bitwise identical** to throwing the graph away and
running ``full_propagate()`` from scratch — while charging a smaller
runtime proxy.  Random seeded edit walks across designs, corners and
engines exercise that property; the rest covers the kernel's error
paths, its :class:`StaStats` accounting, and the delay-policy hooks.
"""

import copy

import numpy as np
import pytest

from repro.eda.floorplan import make_floorplan
from repro.eda.library import DRIVE_STRENGTHS, make_default_library
from repro.eda.placement import QuadraticPlacer
from repro.eda.sta import (
    FAST,
    SLOW,
    TYPICAL,
    DelayPolicy,
    GraphDelayPolicy,
    GraphSTA,
    SignoffDelayPolicy,
    SignoffSTA,
    StaStats,
    TimingGraph,
    TimingTopology,
)
from repro.eda.synthesis import DesignSpec, synthesize
from tests.eda.test_sta_equivalence import assert_reports_identical

CLOCK = 1100.0


def _fresh_design(n_gates, n_flops, depth, seed):
    lib = make_default_library()
    spec = DesignSpec(
        name=f"prop{seed}", n_gates=n_gates, n_flops=n_flops, n_inputs=6,
        n_outputs=6, depth=depth, locality=0.7,
    )
    nl = synthesize(spec, lib, effort=0.5, seed=seed)
    fp = make_floorplan(nl, utilization=0.7)
    pl = QuadraticPlacer().place(nl, fp, seed=seed + 1)
    return nl, pl


def _random_swap(netlist, rng):
    """Apply one random upsize / downsize / LVT swap; return the name."""
    combs = [n for n, i in netlist.instances.items() if not i.cell.is_sequential]
    lib = netlist.library
    for _ in range(40):
        name = combs[int(rng.integers(0, len(combs)))]
        cell = netlist.instances[name].cell
        kind = int(rng.integers(0, 3))
        drive_idx = DRIVE_STRENGTHS.index(cell.drive)
        if kind == 0 and drive_idx + 1 < len(DRIVE_STRENGTHS):
            netlist.replace_cell(name, lib.resize(cell, DRIVE_STRENGTHS[drive_idx + 1]))
            return name
        if kind == 1 and drive_idx > 0:
            netlist.replace_cell(name, lib.resize(cell, DRIVE_STRENGTHS[drive_idx - 1]))
            return name
        if kind == 2 and cell.vt != "LVT":
            netlist.replace_cell(name, lib.swap_vt(cell, "LVT"))
            return name
    raise RuntimeError("no applicable edit found")


# ------------------------------------------------------- the core property
@pytest.mark.parametrize("engine_cls,corner", [
    (GraphSTA, TYPICAL),
    (GraphSTA, SLOW),
    (SignoffSTA, FAST),
    (SignoffSTA, SLOW),
])
@pytest.mark.parametrize("design_seed", [21, 77])
@pytest.mark.parametrize("edit_seed", [0, 9])
def test_random_edit_walk_matches_full_propagate(
    engine_cls, corner, design_seed, edit_seed
):
    nl, pl = _fresh_design(90, 12, 8, design_seed)
    rng = np.random.default_rng(edit_seed)
    skews = {
        inst.name: float(rng.normal(0.0, 3.0))
        for inst in nl.sequential_instances()
    }
    engine = engine_cls(corner)
    graph = engine.build_graph(nl, pl, skews=skews, check_hold=True)
    graph.full_propagate()
    graph.report(CLOCK)  # drain the full-propagate ops
    for step in range(12):
        touched = [_random_swap(nl, rng)]
        graph.update(touched)
        incremental = graph.report(CLOCK)
        scratch = engine.analyze(nl, pl, CLOCK, skews, check_hold=True)
        # incremental QoR is bitwise the from-scratch QoR, cheaper proxy
        assert_reports_identical(incremental, scratch, compare_proxy=False)
    assert graph.stats.incremental_updates > 0
    assert graph.stats.proxy_saved > 0


@pytest.mark.parametrize("engine_cls,corner", [
    (GraphSTA, TYPICAL),
    (SignoffSTA, SLOW),
])
@pytest.mark.parametrize("edit_seed", [1, 13])
def test_edit_walk_vectorized_tracks_scalar_kernel(engine_cls, corner, edit_seed):
    """Two live kernels — SoA and scalar — walk the same random edit
    sequence; after every update both report bit-identically to each
    other and to a from-scratch scalar analysis."""
    nl, pl = _fresh_design(90, 12, 8, 61)
    rng = np.random.default_rng(edit_seed)
    skews = {
        inst.name: float(rng.normal(0.0, 3.0))
        for inst in nl.sequential_instances()
    }
    engine = engine_cls(corner)
    vec = engine.build_graph(nl, pl, skews=skews, check_hold=True,
                             vectorize=True)
    scalar = engine.build_graph(nl, pl, skews=skews, check_hold=True,
                                vectorize=False)
    vec.full_propagate()
    scalar.full_propagate()
    vec.report(CLOCK)  # drain the full-propagate ops
    scalar.report(CLOCK)
    for step in range(8):
        touched = [_random_swap(nl, rng)]
        vec.update(touched)
        scalar.update(touched)
        r_vec = vec.report(CLOCK)
        r_scalar = scalar.report(CLOCK)
        assert_reports_identical(r_vec, r_scalar)
        scratch = engine.analyze(nl, pl, CLOCK, skews, check_hold=True)
        assert_reports_identical(r_vec, scratch, compare_proxy=False)


def test_buffer_splice_vectorized_tracks_scalar_kernel():
    """Structural edits (buffer splices) re-propagate through the
    façade-backed state identically in both kernels — including nets
    the splice makes newly present/absent."""
    nl, pl = _fresh_design(70, 10, 6, 34)
    buffer_cell = nl.library.pick("BUF", 1, "HVT")
    engine = SignoffSTA(SLOW)
    vec = engine.build_graph(nl, pl, check_hold=True, vectorize=True)
    scalar = engine.build_graph(nl, pl, check_hold=True, vectorize=False)
    vec.full_propagate()
    scalar.full_propagate()
    vec.report(CLOCK)  # drain the full-propagate ops
    scalar.report(CLOCK)
    flops = [i.name for i in nl.sequential_instances()][:4]
    for k, flop_name in enumerate(flops):
        d_net = nl.instances[flop_name].input_nets[0]
        buf = nl.insert_buffer(f"vsplice_{k}", buffer_cell, d_net, flop_name, 0)
        pl.positions[buf.name] = pl.positions[flop_name]
        vec.update([buf.name])
        scalar.update([buf.name])
        assert_reports_identical(vec.report(CLOCK), scalar.report(CLOCK))
        scratch = engine.analyze(nl, pl, CLOCK, check_hold=True)
        assert_reports_identical(vec.report(CLOCK), scratch,
                                 compare_proxy=False)


def test_batched_edits_match_full_propagate(small_netlist, small_placement,
                                            small_congestion):
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    rng = np.random.default_rng(4)
    engine = SignoffSTA()
    graph = engine.build_graph(nl, pl, congestion=small_congestion)
    graph.full_propagate()
    graph.report(CLOCK)  # drain the full-propagate ops
    # several edits folded into one update() call, duplicates included
    touched = [_random_swap(nl, rng) for _ in range(6)]
    graph.update(touched + touched[:2])
    incremental = graph.report(CLOCK)
    scratch = engine.analyze(nl, pl, CLOCK, congestion=small_congestion)
    assert_reports_identical(incremental, scratch, compare_proxy=False)


def test_buffer_splice_matches_full_propagate():
    nl, pl = _fresh_design(70, 10, 6, 33)
    lib = nl.library
    buffer_cell = lib.pick("BUF", 1, "HVT")
    engine = GraphSTA()
    graph = engine.build_graph(nl, pl, check_hold=True)
    graph.full_propagate()
    graph.report(CLOCK)  # drain the full-propagate ops
    flops = [i.name for i in nl.sequential_instances()][:4]
    for k, flop_name in enumerate(flops):
        d_net = nl.instances[flop_name].input_nets[0]
        buf = nl.insert_buffer(f"splice_{k}", buffer_cell, d_net, flop_name, 0)
        pl.positions[buf.name] = pl.positions[flop_name]
        graph.update([buf.name])
        incremental = graph.report(CLOCK)
        scratch = engine.analyze(nl, pl, CLOCK, check_hold=True)
        assert_reports_identical(incremental, scratch, compare_proxy=False)


def test_interleaved_swaps_and_splices():
    nl, pl = _fresh_design(80, 10, 7, 55)
    rng = np.random.default_rng(2)
    buffer_cell = nl.library.pick("BUF", 1, "HVT")
    engine = SignoffSTA(SLOW)
    graph = engine.build_graph(nl, pl, check_hold=True)
    graph.full_propagate()
    graph.report(CLOCK)  # drain the full-propagate ops
    flops = [i.name for i in nl.sequential_instances()]
    for step in range(6):
        if step % 2:
            flop_name = flops[step % len(flops)]
            d_net = nl.instances[flop_name].input_nets[0]
            buf = nl.insert_buffer(f"mix_{step}", buffer_cell, d_net, flop_name, 0)
            pl.positions[buf.name] = pl.positions[flop_name]
            touched = [buf.name]
        else:
            touched = [_random_swap(nl, rng)]
        graph.update(touched)
        incremental = graph.report(CLOCK)
        scratch = engine.analyze(nl, pl, CLOCK, check_hold=True)
        assert_reports_identical(incremental, scratch, compare_proxy=False)


def test_full_propagate_after_splices_rebuilds_topology():
    """A splice leaves the shared topology stale on purpose; the next
    full_propagate must rebuild it to include the new node."""
    nl, pl = _fresh_design(60, 8, 6, 44)
    engine = GraphSTA()
    graph = engine.build_graph(nl, pl)
    graph.full_propagate()
    flop_name = next(iter(nl.sequential_instances())).name
    buf = nl.insert_buffer(
        "rebuild_buf", nl.library.pick("BUF", 1, "HVT"),
        nl.instances[flop_name].input_nets[0], flop_name, 0,
    )
    pl.positions[buf.name] = pl.positions[flop_name]
    assert graph.topology.stale
    graph.full_propagate()
    assert not graph.topology.stale
    assert buf.name in graph.topology.order
    assert_reports_identical(graph.report(CLOCK),
                             engine.analyze(nl, pl, CLOCK))


# ------------------------------------------------------------- error paths
def test_update_before_propagate_raises(small_netlist, small_placement):
    graph = GraphSTA().build_graph(small_netlist, small_placement)
    with pytest.raises(RuntimeError):
        graph.update(["g0"])


def test_report_before_propagate_raises(small_netlist, small_placement):
    graph = GraphSTA().build_graph(small_netlist, small_placement)
    with pytest.raises(RuntimeError):
        graph.report(CLOCK)


def test_report_rejects_bad_period(small_netlist, small_placement):
    graph = GraphSTA().build_graph(small_netlist, small_placement)
    graph.full_propagate()
    with pytest.raises(ValueError):
        graph.report(0.0)


# ---------------------------------------------------------- stats accounting
def test_stats_full_only(small_netlist, small_placement):
    graph = GraphSTA().build_graph(small_netlist, small_placement)
    graph.full_propagate()
    graph.report(CLOCK)
    stats = graph.stats
    assert stats.full_propagates == 1
    assert stats.incremental_updates == 0
    assert stats.nodes_propagated == 0
    # a single fresh query pays exactly the full-equivalent proxy
    assert stats.proxy_executed == stats.proxy_full_equivalent
    assert stats.proxy_saved == 0.0


def test_stats_after_updates(small_netlist, small_placement):
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    rng = np.random.default_rng(8)
    graph = GraphSTA().build_graph(nl, pl)
    graph.full_propagate()
    graph.report(CLOCK)
    nodes = graph.update([_random_swap(nl, rng)])
    graph.report(CLOCK)
    stats = graph.stats
    assert stats.incremental_updates == 1
    assert stats.nodes_propagated == nodes > 0
    assert nodes < len(nl.instances)  # dirty cone, not the whole design
    assert stats.proxy_saved > 0


def test_stats_add_and_copy():
    a = StaStats(full_propagates=1, incremental_updates=2, nodes_propagated=30,
                 proxy_executed=100.0, proxy_full_equivalent=400.0)
    b = a.copy()
    b.add(StaStats(full_propagates=1, proxy_executed=50.0,
                   proxy_full_equivalent=50.0))
    assert a.full_propagates == 1  # copy() detached
    assert b.full_propagates == 2
    assert b.proxy_saved == 300.0
    assert StaStats(proxy_executed=10.0, proxy_full_equivalent=5.0).proxy_saved == 0.0


# ----------------------------------------------------- topology & policies
def test_topology_shared_between_engines(small_netlist, small_placement):
    topo = TimingTopology(small_netlist, small_placement)
    g1 = GraphSTA().build_graph(small_netlist, small_placement, topology=topo)
    g2 = SignoffSTA().build_graph(small_netlist, small_placement, topology=topo)
    assert g1.topology is g2.topology is topo
    g1.full_propagate()
    g2.full_propagate()
    assert_reports_identical(g1.report(CLOCK),
                             GraphSTA().analyze(small_netlist, small_placement, CLOCK))
    assert_reports_identical(g2.report(CLOCK),
                             SignoffSTA().analyze(small_netlist, small_placement, CLOCK))


def test_topology_staleness_tracks_structure_version(small_netlist, small_placement):
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    topo = TimingTopology(nl, pl)
    assert not topo.stale
    flop_name = next(iter(nl.sequential_instances())).name
    buf = nl.insert_buffer("stale_buf", nl.library.pick("BUF", 1, "HVT"),
                           nl.instances[flop_name].input_nets[0], flop_name, 0)
    pl.positions[buf.name] = pl.positions[flop_name]
    assert topo.stale
    topo.rebuild()
    assert not topo.stale


def test_graph_policy_defaults():
    policy = GraphDelayPolicy(TYPICAL)
    assert policy.engine_name == "graph"
    assert policy.si_bump(100.0, 0.9) == 0.0
    assert policy.stage_derate() == 1.0
    assert policy.early_derate() == 1.0
    assert policy.merge_slew([3.0, 7.0, 5.0]) == 7.0
    assert policy.runtime_proxy(42) == 42.0
    assert policy.full_runtime_proxy(42) == 42.0


def test_signoff_policy_hooks():
    policy = SignoffDelayPolicy(SLOW, si_factor=0.5, ocv_derate=1.06, pba=True)
    assert policy.engine_name == "signoff"
    assert policy.si_bump(10.0, 0.5) == 0.5 * 10.0 * 0.12 * 0.5
    assert policy.si_bump(10.0, -1.0) == 0.0  # congestion clamped at zero
    assert policy.stage_derate() == 1.06
    assert policy.early_derate() == 0.92  # fixed early OCV
    rms = policy.merge_slew([3.0, 4.0])
    assert rms == float(np.sqrt(np.mean(np.array([3.0, 4.0]) ** 2)))
    assert policy.runtime_proxy(10) == 60.0
    assert policy.full_runtime_proxy(10) == 60.0 * 1.8  # PBA depth sweep


def test_signoff_policy_validation():
    with pytest.raises(ValueError):
        SignoffDelayPolicy(TYPICAL, si_factor=-0.1)
    with pytest.raises(ValueError):
        SignoffDelayPolicy(TYPICAL, ocv_derate=0.9)
    with pytest.raises(ValueError):
        SignoffSTA(si_factor=-0.1)
    with pytest.raises(ValueError):
        SignoffSTA(ocv_derate=0.9)


def test_base_policy_wire_delay_is_elmore():
    policy = DelayPolicy(SLOW)
    lib = make_default_library()
    r = lib.wire_r_per_um * 40.0 * SLOW.wire_factor
    c_wire = lib.wire_c_per_um * 40.0 * SLOW.wire_factor
    assert policy.wire_delay(40.0, 6.0, lib) == r * (c_wire / 2.0 + 6.0)


# ----------------------------------------------------------- report helpers
def test_slack_of_names_endpoint_and_engine(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, CLOCK)
    with pytest.raises(KeyError) as err:
        report.slack_of("nope/D")
    message = str(err.value)
    assert "nope/D" in message
    assert "graph" in message


def test_worst_endpoint_matches_wns(small_netlist, small_placement):
    report = SignoffSTA().analyze(small_netlist, small_placement, CLOCK)
    worst = report.worst_endpoint()
    assert worst is not None
    assert worst.slack == report.wns
    # first-wins on exact ties: scan order is insertion order
    first_min = next(
        name for name, ep in report.endpoints.items() if ep.slack == report.wns
    )
    assert worst.endpoint == first_min


def test_worst_endpoint_empty_report():
    from repro.eda.sta import TimingReport

    assert TimingReport(engine="graph", corner="tt",
                        clock_period=CLOCK).worst_endpoint() is None


# --------------------------------------------------------- metrics plumbing
def test_sta_events_registered_in_vocabulary():
    from repro.metrics.schema import EXECUTOR_EVENT_METRICS, VOCABULARY

    for name in ("sta.full", "sta.incremental.updates",
                 "sta.incremental.nodes", "sta.incremental.proxy_saved"):
        assert name in VOCABULARY
        assert name in EXECUTOR_EVENT_METRICS
