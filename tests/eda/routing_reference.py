"""Frozen copy of the post-bugfix scalar routing kernels (the golden
reference for the vectorized routing equivalence tests).

This is the literal per-edge-loop implementation the struct-of-arrays
fast paths replaced, captured *after* the PR-7 bugfix that routed gcell
binning through the shared floor-and-clamp rule (inlined here as
``_bin`` so the reference stays frozen even if ``repro.eda.grid``
evolves).  The detailed router keeps the historical per-cell multinomial
scatter loop.  Not a test module — no ``test_`` prefix, so pytest does
not collect it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.eda.placement import Placement
from repro.eda.routing import (
    SUCCESS_DRV_THRESHOLD,
    DetailedRouteResult,
    GlobalRouteResult,
)


def _bin(coord: float, extent: float, n_bins: int) -> int:
    """Floor-based clamped binning, frozen (same rule as grid.bin_index)."""
    return min(n_bins - 1, max(0, int(math.floor(coord / extent * n_bins))))


class ReferenceGlobalRouter:
    """The historical grid router: per-edge Python cost/commit loops."""

    def __init__(
        self,
        nx: int = 16,
        ny: int = 16,
        tracks_per_um: float = 16.0,
        negotiation_rounds: int = 3,
        overflow_penalty: float = 2.0,
    ):
        if nx < 2 or ny < 2:
            raise ValueError("grid must be at least 2x2")
        if tracks_per_um <= 0:
            raise ValueError("tracks_per_um must be positive")
        self.nx = nx
        self.ny = ny
        self.tracks_per_um = tracks_per_um
        self.negotiation_rounds = negotiation_rounds
        self.overflow_penalty = overflow_penalty

    def route(self, placement: Placement, seed: Optional[int] = None) -> GlobalRouteResult:
        rng = np.random.default_rng(seed)
        fp = placement.floorplan
        netlist = placement.netlist
        nx, ny = self.nx, self.ny
        cap_h = self.tracks_per_um * fp.height / ny
        cap_v = self.tracks_per_um * fp.width / nx

        # Build two-pin segments per net: chain pins in x order.
        segments: List[Tuple[int, int, int, int]] = []
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            pts = []
            if net.driver is not None:
                pts.append(placement.positions[net.driver])
            pts += [placement.positions[s] for s, _ in net.sinks]
            pad = fp.pad_positions.get(net_name)
            if pad is not None:
                pts.append(pad)
            if len(pts) < 2:
                continue
            pts.sort()
            for a, b in zip(pts[:-1], pts[1:]):
                ia = _bin(a[0], fp.width, nx)
                ja = _bin(a[1], fp.height, ny)
                ib = _bin(b[0], fp.width, nx)
                jb = _bin(b[1], fp.height, ny)
                if (ia, ja) != (ib, jb):
                    segments.append((ia, ja, ib, jb))

        demand_h = np.zeros((ny, max(1, nx - 1)))
        demand_v = np.zeros((max(1, ny - 1), nx))
        routes: List[Tuple[bool, Tuple[int, int, int, int]]] = []
        penalty = self.overflow_penalty

        def run_cost_h(j: int, lo: int, hi: int) -> float:
            over = 0.0
            for i in range(lo, hi):
                over += max(0.0, demand_h[j, i] + 1.0 - cap_h)
            return (hi - lo) + penalty * over

        def run_cost_v(i: int, lo: int, hi: int) -> float:
            over = 0.0
            for j in range(lo, hi):
                over += max(0.0, demand_v[j, i] + 1.0 - cap_v)
            return (hi - lo) + penalty * over

        def l_cost(seg, horizontal_first: bool) -> float:
            ia, ja, ib, jb = seg
            ilo, ihi = min(ia, ib), max(ia, ib)
            jlo, jhi = min(ja, jb), max(ja, jb)
            if horizontal_first:
                return run_cost_h(ja, ilo, ihi) + run_cost_v(ib, jlo, jhi)
            return run_cost_v(ia, jlo, jhi) + run_cost_h(jb, ilo, ihi)

        def commit(seg, horizontal_first: bool, sign: float) -> None:
            ia, ja, ib, jb = seg
            if horizontal_first:
                for i in range(min(ia, ib), max(ia, ib)):
                    demand_h[ja, i] += sign
                for j2 in range(min(ja, jb), max(ja, jb)):
                    demand_v[j2, ib] += sign
            else:
                for j2 in range(min(ja, jb), max(ja, jb)):
                    demand_v[j2, ia] += sign
                for i2 in range(min(ia, ib), max(ia, ib)):
                    demand_h[jb, i2] += sign

        # initial routing pass (random tie-break between the two L shapes)
        for seg in segments:
            c_hf = l_cost(seg, True)
            c_vf = l_cost(seg, False)
            if abs(c_hf - c_vf) < 1e-9:
                hf = bool(rng.integers(0, 2))
            else:
                hf = c_hf < c_vf
            commit(seg, hf, +1.0)
            routes.append((hf, seg))

        # negotiation: rip up and reroute every segment with updated costs
        for _ in range(self.negotiation_rounds):
            new_routes = []
            for hf, seg in routes:
                commit(seg, hf, -1.0)
                c_hf = l_cost(seg, True)
                c_vf = l_cost(seg, False)
                if abs(c_hf - c_vf) < 1e-9:
                    new_hf = bool(rng.integers(0, 2))
                else:
                    new_hf = c_hf < c_vf
                commit(seg, new_hf, +1.0)
                new_routes.append((new_hf, seg))
            routes = new_routes

        gx = fp.width / nx
        gy = fp.height / ny
        wirelength = float(demand_h.sum() * gx + demand_v.sum() * gy)
        return GlobalRouteResult(
            nx=nx,
            ny=ny,
            demand_h=demand_h,
            demand_v=demand_v,
            capacity_h=cap_h,
            capacity_v=cap_v,
            wirelength=wirelength,
        )


class ReferenceDetailedRouter:
    """The historical rip-up engine with the per-cell scatter loop."""

    def __init__(
        self,
        max_iterations: int = 20,
        effort: float = 0.6,
        drv_seed_rate: float = 30.0,
        spill_rate: float = 0.55,
        shock_prob: float = 0.3,
        shock_frac: float = 0.6,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < effort <= 1.0:
            raise ValueError("effort must be in (0, 1]")
        if not 0.0 <= shock_prob <= 1.0:
            raise ValueError("shock_prob must be in [0, 1]")
        self.max_iterations = max_iterations
        self.effort = effort
        self.drv_seed_rate = drv_seed_rate
        self.spill_rate = spill_rate
        self.shock_prob = shock_prob
        self.shock_frac = shock_frac

    def route(
        self,
        congestion: np.ndarray,
        seed: Optional[int] = None,
        stop_callback=None,
    ) -> DetailedRouteResult:
        cong = np.asarray(congestion, dtype=float)
        if cong.ndim != 2:
            raise ValueError("congestion map must be 2-D")
        rng = np.random.default_rng(seed)

        excess = np.maximum(0.0, cong - 0.9)
        lam = self.drv_seed_rate * (excess * 10.0) ** 1.5 + 0.3 * cong
        violations = rng.poisson(lam).astype(float)

        history: List[int] = [int(violations.sum())]
        stopped = False
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            violations = self._iterate(violations, cong, rng)
            history.append(int(violations.sum()))
            if stop_callback is not None and stop_callback(list(history)):
                stopped = True
                break
            if history[-1] == 0:
                break

        return DetailedRouteResult(
            drvs_per_iteration=history,
            success=history[-1] < SUCCESS_DRV_THRESHOLD and not stopped,
            iterations_run=iterations,
            stopped_early=stopped,
            metadata={
                "mean_congestion": float(cong.mean()),
                "max_congestion": float(cong.max()),
                "overflow_fraction": float((cong > 1.0).mean()),
            },
        )

    def _iterate(
        self, violations: np.ndarray, cong: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        slack = 1.0 - cong
        p_fix = self.effort * _sigmoid(6.0 * slack + 0.5)
        fixed = rng.binomial(violations.astype(int), np.clip(p_fix, 0.0, 1.0))
        neighborhood = _box_mean(cong)
        p_spill = self.spill_rate * _sigmoid(8.0 * (neighborhood - 1.0))
        spilled = rng.binomial(fixed, np.clip(p_spill, 0.0, 1.0))
        remaining = violations - fixed
        incoming = _scatter_to_neighbors(spilled, rng)
        out = np.maximum(0.0, remaining + incoming)
        if self.shock_prob > 0 and rng.random() < self.shock_prob:
            total = out.sum()
            if total > 0:
                lam = self.shock_frac * total * cong / max(1e-9, cong.sum())
                out = out + rng.poisson(lam)
        return out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -50, 50)))


def _box_mean(grid: np.ndarray) -> np.ndarray:
    padded = np.pad(grid, 1, mode="edge")
    out = np.zeros_like(grid)
    for dj in range(3):
        for di in range(3):
            out += padded[dj : dj + grid.shape[0], di : di + grid.shape[1]]
    return out / 9.0


def _scatter_to_neighbors(counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Per-cell multinomial loop (the frozen historical scatter)."""
    out = np.zeros_like(counts, dtype=float)
    ny, nx = counts.shape
    js, is_ = np.nonzero(counts)
    if js.size == 0:
        return out
    n_per_cell = counts[js, is_].astype(int)
    draws = np.stack([rng.multinomial(n, [0.25] * 4) for n in n_per_cell])
    for d, (dj, di) in enumerate(((0, 1), (0, -1), (1, 0), (-1, 0))):
        tj = np.clip(js + dj, 0, ny - 1)
        ti = np.clip(is_ + di, 0, nx - 1)
        np.add.at(out, (tj, ti), draws[:, d])
    return out


#: live scalar kernels frozen by this module, checked by lint rule R011
#: ("<root-relative live path>::<qualname>" -> reference qualname); a
#: drifted pair is a lint error until the reference is re-frozen
FROZEN_PAIRS = {
    "src/repro/eda/routing.py::GlobalRouter._negotiate_scalar.run_cost_h":
        "ReferenceGlobalRouter.route.run_cost_h",
    "src/repro/eda/routing.py::GlobalRouter._negotiate_scalar.run_cost_v":
        "ReferenceGlobalRouter.route.run_cost_v",
    "src/repro/eda/routing.py::GlobalRouter._negotiate_scalar.l_cost":
        "ReferenceGlobalRouter.route.l_cost",
    "src/repro/eda/routing.py::GlobalRouter._negotiate_scalar.commit":
        "ReferenceGlobalRouter.route.commit",
    "src/repro/eda/routing.py::DetailedRouter.route":
        "ReferenceDetailedRouter.route",
    "src/repro/eda/routing.py::_sigmoid": "_sigmoid",
    "src/repro/eda/routing.py::_box_mean": "_box_mean",
}
