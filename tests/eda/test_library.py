"""Standard-cell library: structure, monotonicity, lookups."""

import pytest

from repro.eda.library import (
    DRIVE_STRENGTHS,
    VT_CLASSES,
    StdCellLibrary,
    make_default_library,
)


def test_full_library_size(library):
    # 11 functions x 4 drives x 3 VTs
    assert len(library.cells) == 11 * 4 * 3


def test_all_functions_have_all_variants(library):
    for function in library.functions:
        assert len(library.variants(function)) == len(DRIVE_STRENGTHS) * len(VT_CLASSES)


def test_drive_reduces_resistance(library):
    x1 = library.pick("NAND2", 1)
    x8 = library.pick("NAND2", 8)
    assert x8.drive_resistance < x1.drive_resistance
    assert x8.area > x1.area
    assert x8.input_cap > x1.input_cap


def test_vt_tradeoff(library):
    lvt = library.pick("INV", 2, "LVT")
    svt = library.pick("INV", 2, "SVT")
    hvt = library.pick("INV", 2, "HVT")
    assert lvt.intrinsic_delay < svt.intrinsic_delay < hvt.intrinsic_delay
    assert lvt.leakage > svt.leakage > hvt.leakage


def test_delay_monotone_in_load(library):
    cell = library.pick("NAND2", 2)
    assert cell.delay(1.0) < cell.delay(10.0) < cell.delay(100.0)


def test_delay_monotone_in_slew(library):
    cell = library.pick("NOR2", 1)
    assert cell.delay(5.0, input_slew=5.0) < cell.delay(5.0, input_slew=50.0)


def test_negative_load_rejected(library):
    cell = library.pick("INV", 1)
    with pytest.raises(ValueError):
        cell.delay(-1.0)
    with pytest.raises(ValueError):
        cell.output_slew(-1.0)


def test_resize_and_swap_vt(library):
    cell = library.pick("AOI21", 1, "SVT")
    bigger = library.resize(cell, 4)
    assert bigger.function == "AOI21" and bigger.drive == 4 and bigger.vt == "SVT"
    faster = library.swap_vt(cell, "LVT")
    assert faster.function == "AOI21" and faster.drive == 1 and faster.vt == "LVT"
    with pytest.raises(ValueError):
        library.resize(cell, 3)
    with pytest.raises(ValueError):
        library.swap_vt(cell, "XVT")


def test_unknown_lookups(library):
    with pytest.raises(KeyError):
        library.get("NAND9_X1_SVT")
    with pytest.raises(KeyError):
        library.variants("NAND9")


def test_duplicate_add_rejected(library):
    lib = StdCellLibrary("dup")
    cell = library.pick("INV", 1)
    lib.add(cell)
    with pytest.raises(ValueError):
        lib.add(cell)


def test_dff_is_sequential(library):
    assert library.pick("DFF", 1).is_sequential
    assert not library.pick("INV", 1).is_sequential


def test_library_is_reproducible():
    a = make_default_library()
    b = make_default_library()
    assert a.cells.keys() == b.cells.keys()
    assert all(a.cells[k] == b.cells[k] for k in a.cells)
