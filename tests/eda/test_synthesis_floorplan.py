"""Synthesis generator and floorplanner behaviour."""

import numpy as np
import pytest

from repro.eda.floorplan import Floorplan, Macro, make_floorplan, ROW_HEIGHT
from repro.eda.synthesis import DEFAULT_FUNCTION_MIX, DesignSpec, synthesize


# ---------------------------------------------------------------- synthesis
def test_spec_validation():
    with pytest.raises(ValueError):
        DesignSpec("x", n_gates=0)
    with pytest.raises(ValueError):
        DesignSpec("x", n_flops=0)
    with pytest.raises(ValueError):
        DesignSpec("x", depth=1)
    with pytest.raises(ValueError):
        DesignSpec("x", locality=0.0)
    with pytest.raises(ValueError):
        DesignSpec("x", function_mix={"INV": 0.5})


def test_synthesis_is_deterministic(library, small_spec):
    a = synthesize(small_spec, library, effort=0.5, seed=11)
    b = synthesize(small_spec, library, effort=0.5, seed=11)
    assert a.stats() == b.stats()
    assert list(a.instances) == list(b.instances)


def test_synthesis_seed_changes_structure(library, small_spec):
    a = synthesize(small_spec, library, effort=0.5, seed=1)
    b = synthesize(small_spec, library, effort=0.5, seed=2)
    # same interface, different internal wiring
    assert a.n_instances == b.n_instances
    wiring_a = [tuple(i.input_nets) for i in a.instances.values()]
    wiring_b = [tuple(i.input_nets) for i in b.instances.values()]
    assert wiring_a != wiring_b


def test_effort_trades_depth_for_area(library):
    spec = DesignSpec("e", n_gates=300, n_flops=24, n_inputs=12, n_outputs=12, depth=20)
    lazy = synthesize(spec, library, effort=0.0, seed=3)
    hard = synthesize(spec, library, effort=1.0, seed=3)
    assert hard.logic_depth() < lazy.logic_depth()
    assert hard.n_instances > lazy.n_instances


def test_effort_bounds(library, small_spec):
    with pytest.raises(ValueError):
        synthesize(small_spec, library, effort=1.5)
    with pytest.raises(ValueError):
        synthesize(small_spec, library, effort=-0.1)


def test_function_mix_respected(library):
    mix = dict(DEFAULT_FUNCTION_MIX)
    # force an XOR-dominated netlist
    for k in mix:
        mix[k] = 0.01
    mix["XOR2"] = 1.0 - 0.01 * (len(mix) - 1)
    spec = DesignSpec("mix", n_gates=200, n_flops=8, n_inputs=8, n_outputs=8,
                      depth=8, function_mix=mix)
    nl = synthesize(spec, library, effort=0.0, seed=4)
    functions = [i.cell.function for i in nl.combinational_instances()]
    assert functions.count("XOR2") / len(functions) > 0.7


# ---------------------------------------------------------------- floorplan
def test_floorplan_area_matches_utilization(small_netlist):
    fp = make_floorplan(small_netlist, utilization=0.5)
    assert fp.area * 0.5 == pytest.approx(small_netlist.total_area, rel=0.1)


def test_floorplan_higher_utilization_smaller_die(small_netlist):
    loose = make_floorplan(small_netlist, utilization=0.5)
    tight = make_floorplan(small_netlist, utilization=0.9)
    assert tight.area < loose.area


def test_floorplan_aspect_ratio(small_netlist):
    tall = make_floorplan(small_netlist, utilization=0.7, aspect_ratio=2.0)
    assert tall.height > tall.width


def test_floorplan_pads_on_boundary(small_netlist, small_floorplan):
    fp = small_floorplan
    for name, (x, y) in fp.pad_positions.items():
        on_edge = (
            x in (0.0, fp.width) or y in (0.0, fp.height)
            or abs(x) < 1e-9 or abs(x - fp.width) < 1e-9
            or abs(y) < 1e-9 or abs(y - fp.height) < 1e-9
        )
        assert on_edge, f"pad {name} at ({x},{y}) not on boundary"
    for pi in small_netlist.primary_inputs:
        assert pi in fp.pad_positions
    for po in small_netlist.primary_outputs:
        assert po in fp.pad_positions


def test_floorplan_row_quantization(small_netlist):
    fp = make_floorplan(small_netlist, utilization=0.7)
    assert fp.height % ROW_HEIGHT == pytest.approx(0.0, abs=1e-9)
    assert fp.n_rows >= 1


def test_floorplan_validation(small_netlist):
    with pytest.raises(ValueError):
        make_floorplan(small_netlist, utilization=0.01)
    with pytest.raises(ValueError):
        make_floorplan(small_netlist, utilization=0.7, aspect_ratio=0.0)


def test_macro_placement_and_overlap():
    fp = Floorplan(width=20.0, height=20.0, utilization=0.7)
    fp.add_macro(Macro("m0", 1.0, 1.0, 5.0, 5.0))
    assert fp.in_macro(3.0, 3.0)
    assert not fp.in_macro(10.0, 10.0)
    with pytest.raises(ValueError):
        fp.add_macro(Macro("m1", 4.0, 4.0, 5.0, 5.0))  # overlaps m0
    with pytest.raises(ValueError):
        fp.add_macro(Macro("m2", 18.0, 18.0, 5.0, 5.0))  # off core
    assert fp.macro_area() == 25.0


def test_macro_overlap_symmetry():
    a = Macro("a", 0, 0, 4, 4)
    b = Macro("b", 2, 2, 4, 4)
    c = Macro("c", 10, 10, 2, 2)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c) and not c.overlaps(a)


def test_contains(small_floorplan):
    fp = small_floorplan
    assert fp.contains(fp.width / 2, fp.height / 2)
    assert not fp.contains(-1.0, 0.0)
    assert not fp.contains(fp.width + 1.0, 0.0)
