"""Frozen copy of the pre-refactor monolithic SPRFlow (the golden
reference for staged-vs-monolith equivalence tests).

This is the literal ``run``/``implement`` body the staged pipeline
replaced, kept verbatim (same step-seed draw order, same StepLog
construction) so the equivalence suite compares against the historical
behavior rather than against the code under test.  Not a test module —
no ``test_`` prefix, so pytest does not collect it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.eda.cts import ClockTreeSynthesizer
from repro.eda.flow import FlowOptions, FlowResult, StepLog, _default_library
from repro.eda.floorplan import make_floorplan
from repro.eda.netlist import Netlist
from repro.eda.opt import TimingOptimizer
from repro.eda.placement import AnnealingRefiner, QuadraticPlacer
from repro.eda.power import estimate_power, ir_drop_analysis
from repro.eda.routing import DetailedRouter, GlobalRouter
from repro.eda.synthesis import DesignSpec, synthesize
from repro.eda.timing import GraphSTA, SignoffSTA


class MonolithicSPRFlow:
    """The historical single-body flow, verbatim."""

    def __init__(self, stop_callback=None):
        self.stop_callback = stop_callback

    def run(self, spec: DesignSpec, options: FlowOptions, seed: int = 0) -> FlowResult:
        rng = np.random.default_rng(seed)
        step_seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        netlist = synthesize(spec, _default_library(), options.synth_effort, step_seed())
        synth_log = StepLog(
            "synth", dict(netlist.stats(), effort=options.synth_effort),
            runtime_proxy=netlist.n_instances * (1 + 2 * options.synth_effort),
        )
        return self.implement(netlist, options, seed=step_seed(),
                              design_name=spec.name, synth_log=synth_log,
                              result_seed=seed)

    def implement(
        self,
        netlist: Netlist,
        options: FlowOptions,
        seed: int = 0,
        design_name: Optional[str] = None,
        synth_log: Optional[StepLog] = None,
        result_seed: Optional[int] = None,
    ) -> FlowResult:
        rng = np.random.default_rng(seed)
        step_seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        result = FlowResult(
            design=design_name or netlist.name, options=options,
            seed=seed if result_seed is None else result_seed,
        )
        period = options.clock_period_ps
        if synth_log is not None:
            result.logs.append(synth_log)

        # -- floorplan ---------------------------------------------------
        floorplan = make_floorplan(netlist, options.utilization, options.aspect_ratio)
        result.logs.append(
            StepLog("floorplan",
                    {"width": floorplan.width, "height": floorplan.height,
                     "utilization": options.utilization},
                    runtime_proxy=10.0)
        )

        # -- placement ---------------------------------------------------
        placement = QuadraticPlacer(options.spread_strength).place(
            netlist, floorplan, step_seed()
        )
        refiner = AnnealingRefiner(moves_per_cell=options.placer_moves_per_cell)
        hpwl = refiner.refine(placement, step_seed())
        result.hpwl = hpwl
        result.logs.append(
            StepLog("place", {"hpwl": hpwl,
                              "density_max": float(placement.density_map().max())},
                    runtime_proxy=netlist.n_instances * options.placer_moves_per_cell)
        )

        # -- CTS -----------------------------------------------------------
        cts = ClockTreeSynthesizer(options.cts_effort).synthesize(
            netlist, placement, step_seed()
        )
        result.logs.append(
            StepLog("cts", {"skew": cts.global_skew, "buffers": cts.n_buffers,
                            "buffer_area": cts.buffer_area},
                    runtime_proxy=cts.n_buffers * 4.0)
        )

        # -- global route ----------------------------------------------------
        groute = GlobalRouter(tracks_per_um=options.router_tracks_per_um).route(
            placement, step_seed()
        )
        congestion = groute.congestion_map()
        result.logs.append(
            StepLog("groute", {"overflow": groute.overflow,
                               "max_congestion": groute.max_congestion,
                               "wirelength": groute.wirelength},
                    runtime_proxy=groute.wirelength * 0.2)
        )

        # -- timing optimization (embedded graph timer) ----------------------
        optimizer = TimingOptimizer(
            max_passes=options.opt_passes,
            cells_per_pass=options.opt_cells_per_pass,
            guardband=options.opt_guardband,
            recover_power=options.power_recovery,
        )
        opt = optimizer.optimize(
            netlist, placement, period, GraphSTA(), cts.skews, congestion, step_seed()
        )
        result.logs.append(
            StepLog("opt", {"passes": opt.passes, "upsizes": opt.upsizes,
                            "downsizes": opt.downsizes, "vt_swaps": opt.vt_swaps,
                            "wns_graph": opt.final_report.wns},
                    series={"wns": opt.history},
                    runtime_proxy=opt.total_ops * 8.0 + opt.passes * 50.0)
        )

        # -- detailed route ----------------------------------------------------
        drouter = DetailedRouter(
            max_iterations=options.router_max_iterations, effort=options.router_effort
        )
        droute = drouter.route(congestion, step_seed(), self.stop_callback)
        result.final_drvs = droute.final_drvs
        result.routed = droute.success
        result.logs.append(
            StepLog("droute", {"final_drvs": droute.final_drvs,
                               "iterations": droute.iterations_run,
                               "success": float(droute.success)},
                    series={"drvs": [float(v) for v in droute.drvs_per_iteration]},
                    runtime_proxy=droute.iterations_run * 120.0)
        )

        # -- signoff -------------------------------------------------------------
        signoff = SignoffSTA().analyze(netlist, placement, period, cts.skews, congestion)
        result.wns = signoff.wns
        result.tns = signoff.tns
        result.timing_met = signoff.wns >= 0.0
        achieved_period = max(1.0, period - signoff.wns)
        result.achieved_ghz = 1000.0 / achieved_period
        power = estimate_power(netlist, placement, options.target_clock_ghz)
        ir_drop_analysis(netlist, placement, power)
        result.area = netlist.total_area + cts.buffer_area
        result.power = power.total
        result.leakage = power.leakage
        result.logs.append(
            StepLog("signoff", {"wns": signoff.wns, "tns": signoff.tns,
                                "violations": float(signoff.n_violations),
                                "power": power.total,
                                "ir_drop": power.worst_ir_drop},
                    runtime_proxy=signoff.runtime_proxy)
        )
        result.runtime_proxy = sum(log.runtime_proxy for log in result.logs)
        return result
