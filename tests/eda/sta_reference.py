"""Frozen copy of the pre-refactor monolithic STA engines and optimizer
(the golden reference for the incremental-kernel equivalence tests).

This is the literal ``repro.eda.timing`` module (plus the literal
``TimingOptimizer.optimize``/``fix_hold`` loop bodies from
``repro.eda.opt``) as they stood before the :mod:`repro.eda.sta`
refactor, kept verbatim — same float expressions, same ops accounting,
same report construction order — so the equivalence suite compares the
new kernel against the historical behavior rather than against the
code under test.  Not a test module — no ``test_`` prefix, so pytest
does not collect it.

Original module docstring:

Two engines analyze the same netlist/placement under the same "laws of
physics" but with different approximations — exactly the situation in
the paper's Sec 3.2 where "analysis miscorrelation can be an unavoidable
consequence of runtime constraints":

- :class:`GraphSTA` — the P&R tool's embedded timer.  Graph-based
  arrival propagation, lumped-Elmore wire delay, worst-slew propagation,
  no crosstalk, no derates.  Cheap.
- :class:`SignoffSTA` — the signoff timer.  Adds coupling-aware wire
  delay (congestion-dependent SI bump), effective-slew propagation,
  late OCV derates on stage delays, and optional path-based analysis
  (PBA) that recovers graph-based (GBA) pessimism on the worst paths.
  Roughly an order of magnitude more work.

Both return a :class:`TimingReport` with per-endpoint slacks plus the
per-endpoint structural features the correlation models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.library import DFF_CLK_TO_Q, DFF_HOLD, DFF_SETUP
from repro.eda.netlist import Netlist
from repro.eda.placement import Placement

#: Default input slew at primary inputs (ps).
PI_SLEW = 20.0
#: Extra load (fF) a primary output must drive.
PO_LOAD = 2.0


@dataclass(frozen=True)
class Corner:
    """A PVT corner: multiplicative factors on delay and wire RC."""

    name: str
    delay_factor: float = 1.0
    wire_factor: float = 1.0

    def __post_init__(self):
        if self.delay_factor <= 0 or self.wire_factor <= 0:
            raise ValueError("corner factors must be positive")


TYPICAL = Corner("tt", 1.0, 1.0)
SLOW = Corner("ss", 1.18, 1.10)
FAST = Corner("ff", 0.85, 0.94)


@dataclass
class EndpointTiming:
    """Timing and structural features at one endpoint.

    Endpoints are DFF D pins (``kind='setup'``) or primary outputs
    (``kind='output'``).  ``features`` feeds the correlation models.
    """

    endpoint: str
    kind: str
    arrival: float
    required: float
    slack: float
    path_depth: int
    path_wire_delay: float
    path_cell_delay: float
    path_max_fanout: int
    path_slew: float
    hold_slack: float = float("inf")  # populated when check_hold=True

    @property
    def features(self) -> List[float]:
        return [
            self.arrival,
            float(self.path_depth),
            self.path_wire_delay,
            self.path_cell_delay,
            float(self.path_max_fanout),
            self.path_slew,
        ]

    FEATURE_NAMES = (
        "arrival",
        "path_depth",
        "path_wire_delay",
        "path_cell_delay",
        "path_max_fanout",
        "path_slew",
    )


@dataclass
class TimingReport:
    """Result of one STA run."""

    engine: str
    corner: str
    clock_period: float
    endpoints: Dict[str, EndpointTiming] = field(default_factory=dict)
    paths: Dict[str, List[str]] = field(default_factory=dict)  # endpoint -> worst-path instances
    runtime_proxy: float = 0.0  # abstract work units ("cost" axis of Fig 8)

    @property
    def wns(self) -> float:
        """Worst negative slack (most negative endpoint slack; +inf if none)."""
        if not self.endpoints:
            return float("inf")
        return min(e.slack for e in self.endpoints.values())

    @property
    def tns(self) -> float:
        """Total negative slack (sum of negative endpoint slacks)."""
        return sum(min(0.0, e.slack) for e in self.endpoints.values())

    @property
    def n_violations(self) -> int:
        return sum(1 for e in self.endpoints.values() if e.slack < 0)

    @property
    def hold_wns(self) -> float:
        """Worst hold slack over setup endpoints (+inf when not checked)."""
        holds = [e.hold_slack for e in self.endpoints.values() if e.kind == "setup"]
        return min(holds) if holds else float("inf")

    @property
    def n_hold_violations(self) -> int:
        return sum(
            1
            for e in self.endpoints.values()
            if e.kind == "setup" and e.hold_slack < 0
        )

    def slack_of(self, endpoint: str) -> float:
        return self.endpoints[endpoint].slack


class _BaseSTA:
    """Shared arrival-propagation machinery."""

    engine_name = "base"

    def __init__(self, corner: Corner = TYPICAL):
        self.corner = corner

    # hooks the two engines specialize -------------------------------
    def _wire_delay(self, length: float, load: float, lib) -> float:
        """Lumped Elmore: R_wire * (C_wire/2 + C_pins)."""
        r = lib.wire_r_per_um * length * self.corner.wire_factor
        c_wire = lib.wire_c_per_um * length * self.corner.wire_factor
        return r * (c_wire / 2.0 + load)

    def _si_bump(self, length: float, congestion: float) -> float:
        return 0.0

    def _stage_derate(self) -> float:
        return 1.0

    def _early_derate(self) -> float:
        """Multiplier on early-path delays for hold analysis (<= 1)."""
        return 1.0

    def _merge_slew(self, slews: List[float]) -> float:
        return max(slews)

    # ------------------------------------------------------------------
    def analyze(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        skews: Optional[Dict[str, float]] = None,
        congestion: Optional[np.ndarray] = None,
        check_hold: bool = False,
    ) -> TimingReport:
        """Run STA.

        ``skews`` maps flop instance names to clock arrival offsets (ps)
        produced by CTS.  ``congestion`` is a routing-demand map (from
        the global router) used by the signoff engine's SI model.
        ``check_hold`` additionally propagates early (minimum) arrivals
        and populates per-endpoint hold slacks (same-edge check:
        earliest data arrival must exceed capture skew + hold time).
        """
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        lib = netlist.library
        skews = skews or {}
        ops = 0

        # net electrical views
        net_load: Dict[str, float] = {}
        net_len: Dict[str, float] = {}
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            load = sum(
                netlist.instances[s].cell.input_cap for s, _ in net.sinks
            )
            if net_name in netlist.primary_outputs:
                load += PO_LOAD
            length = placement.net_length(net_name)
            load += lib.wire_c_per_um * length * self.corner.wire_factor
            net_load[net_name] = load
            net_len[net_name] = length

        cong_at = self._congestion_lookup(placement, congestion)

        # arrival, slew, and worst-predecessor per net
        arrival: Dict[str, float] = {}
        slew: Dict[str, float] = {}
        pred: Dict[str, Optional[str]] = {}  # net -> driving instance's worst input net
        wire_d: Dict[str, float] = {}
        for pi in netlist.primary_inputs:
            if pi == netlist.clock_net:
                continue
            arrival[pi] = 0.0
            slew[pi] = PI_SLEW
            pred[pi] = None
        for inst in netlist.sequential_instances():
            out = inst.output_net
            launch = skews.get(inst.name, 0.0)
            q_delay = DFF_CLK_TO_Q * self.corner.delay_factor * self._stage_derate()
            load = net_load.get(out, 0.0)
            cell = inst.cell
            arrival[out] = launch + q_delay + cell.drive_resistance * load * self.corner.delay_factor
            slew[out] = cell.output_slew(load)
            pred[out] = None
            ops += 1

        for name in netlist.combinational_order():
            inst = netlist.instances[name]
            out = inst.output_net
            load = net_load.get(out, 0.0)
            cell = inst.cell
            best_arr = -np.inf
            best_net = None
            in_slews = []
            for net_name in inst.input_nets:
                if net_name == netlist.clock_net:
                    continue
                a_in = arrival.get(net_name, 0.0)
                s_in = slew.get(net_name, PI_SLEW)
                in_slews.append(s_in)
                w_delay = self._wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
                w_delay += self._si_bump(net_len.get(net_name, 0.0), cong_at(net_name))
                cand = a_in + w_delay
                ops += 1
                if cand > best_arr:
                    best_arr = cand
                    best_net = net_name
            s_in = self._merge_slew(in_slews) if in_slews else PI_SLEW
            gate_delay = cell.delay(load, s_in) * self.corner.delay_factor * self._stage_derate()
            arrival[out] = best_arr + gate_delay
            slew[out] = cell.output_slew(load)
            pred[out] = best_net
            wire_d[out] = 0.0

        # early (minimum) arrivals for hold analysis: same propagation
        # with min-merge and the early derate (no SI bump — coupling can
        # only slow the early path in this model, which is pessimistic
        # to ignore, so hold sees the raw wire delay)
        arrival_min: Dict[str, float] = {}
        if check_hold:
            early = self._early_derate()
            for pi in netlist.primary_inputs:
                if pi != netlist.clock_net:
                    arrival_min[pi] = 0.0
            for inst in netlist.sequential_instances():
                out = inst.output_net
                launch = skews.get(inst.name, 0.0)
                load = net_load.get(out, 0.0)
                arrival_min[out] = (
                    launch
                    + (DFF_CLK_TO_Q + inst.cell.drive_resistance * load)
                    * self.corner.delay_factor
                    * early
                )
            for name in netlist.combinational_order():
                inst = netlist.instances[name]
                out = inst.output_net
                load = net_load.get(out, 0.0)
                cell = inst.cell
                fastest = np.inf
                for net_name in inst.input_nets:
                    if net_name == netlist.clock_net:
                        continue
                    a_in = arrival_min.get(net_name, 0.0)
                    w_delay = self._wire_delay(net_len.get(net_name, 0.0), cell.input_cap, lib)
                    fastest = min(fastest, a_in + w_delay * early)
                if np.isinf(fastest):
                    fastest = 0.0
                gate_delay = cell.delay(load, PI_SLEW) * self.corner.delay_factor * early
                arrival_min[out] = fastest + gate_delay
                ops += 1

        report = TimingReport(
            engine=self.engine_name, corner=self.corner.name, clock_period=clock_period
        )

        def trace(net_name: str) -> Tuple[int, float, float, int, List[str]]:
            """Walk worst path backwards: (depth, wire_delay, cell_delay, max_fanout, instances)."""
            depth = 0
            wire_total = 0.0
            fan_max = 0
            insts: List[str] = []
            cur: Optional[str] = net_name
            visited = 0
            while cur is not None and visited < 10_000:
                visited += 1
                fan_max = max(fan_max, netlist.net_fanout(cur))
                wire_total += net_len.get(cur, 0.0) * lib.wire_r_per_um
                driver = netlist.nets[cur].driver
                if driver is None or netlist.instances[driver].cell.is_sequential:
                    break
                insts.append(driver)
                depth += 1
                cur = pred.get(cur)
            return depth, wire_total, 0.0, fan_max, insts

        # endpoints: DFF D inputs
        for inst in netlist.sequential_instances():
            d_net = inst.input_nets[0]
            a = arrival.get(d_net, 0.0)
            w_delay = self._wire_delay(net_len.get(d_net, 0.0), inst.cell.input_cap, lib)
            w_delay += self._si_bump(net_len.get(d_net, 0.0), cong_at(d_net))
            a = a + w_delay
            capture = skews.get(inst.name, 0.0)
            required = clock_period + capture - DFF_SETUP * self.corner.delay_factor
            hold_slack = float("inf")
            if check_hold:
                a_min = arrival_min.get(d_net, 0.0)
                w_min = self._wire_delay(
                    net_len.get(d_net, 0.0), inst.cell.input_cap, lib
                ) * self._early_derate()
                hold_required = capture + DFF_HOLD * self.corner.delay_factor
                hold_slack = (a_min + w_min) - hold_required
            depth, wire_total, _, fan_max, path_insts = trace(d_net)
            ep = EndpointTiming(
                endpoint=f"{inst.name}/D",
                kind="setup",
                arrival=a,
                required=required,
                slack=required - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(d_net, PI_SLEW),
                hold_slack=hold_slack,
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2
        # endpoints: primary outputs
        for po in netlist.primary_outputs:
            a = arrival.get(po, 0.0)
            depth, wire_total, _, fan_max, path_insts = trace(po)
            ep = EndpointTiming(
                endpoint=f"{po}/PO",
                kind="output",
                arrival=a,
                required=clock_period,
                slack=clock_period - a,
                path_depth=depth,
                path_wire_delay=wire_total,
                path_cell_delay=a - wire_total,
                path_max_fanout=fan_max,
                path_slew=slew.get(po, PI_SLEW),
            )
            report.endpoints[ep.endpoint] = ep
            report.paths[ep.endpoint] = path_insts
            ops += 2

        report.runtime_proxy = self._runtime_proxy(ops)
        return report

    def _congestion_lookup(self, placement: Placement, congestion: Optional[np.ndarray]):
        if congestion is None:
            return lambda net_name: 0.0
        ny, nx = congestion.shape
        fp = placement.floorplan

        def lookup(net_name: str) -> float:
            net = placement.netlist.nets.get(net_name)
            if net is None or net.driver is None:
                return 0.0
            x, y = placement.positions[net.driver]
            i = min(nx - 1, max(0, int(x / fp.width * nx)))
            j = min(ny - 1, max(0, int(y / fp.height * ny)))
            return float(congestion[j, i])

        return lookup

    def _runtime_proxy(self, ops: int) -> float:
        return float(ops)


class GraphSTA(_BaseSTA):
    """The P&R tool's fast embedded timer (graph-based, no SI)."""

    engine_name = "graph"


class SignoffSTA(_BaseSTA):
    """The signoff timer: SI-aware, derated, optionally path-based."""

    engine_name = "signoff"

    def __init__(
        self,
        corner: Corner = TYPICAL,
        si_factor: float = 0.45,
        ocv_derate: float = 1.06,
        pba: bool = True,
        pba_depth_credit: float = 0.8,
    ):
        super().__init__(corner)
        if si_factor < 0:
            raise ValueError("si_factor must be non-negative")
        if ocv_derate < 1.0:
            raise ValueError("late OCV derate must be >= 1")
        self.si_factor = si_factor
        self.ocv_derate = ocv_derate
        self.pba = pba
        self.pba_depth_credit = pba_depth_credit

    def _si_bump(self, length: float, congestion: float) -> float:
        # coupling delta grows with wire length and local routing demand
        return self.si_factor * length * 0.12 * max(0.0, congestion)

    def _stage_derate(self) -> float:
        return self.ocv_derate

    def _merge_slew(self, slews: List[float]) -> float:
        # effective slew: closer to RMS than worst-case (less pessimistic)
        arr = np.asarray(slews)
        return float(np.sqrt(np.mean(arr**2)))

    def _early_derate(self) -> float:
        return 0.92  # early OCV: fast paths may be faster than nominal

    def analyze(self, netlist, placement, clock_period, skews=None, congestion=None,
                check_hold=False):
        report = super().analyze(netlist, placement, clock_period, skews, congestion,
                                 check_hold)
        if self.pba:
            # PBA pass on the worst endpoints: recover per-stage graph
            # pessimism proportional to path depth.
            worst = sorted(report.endpoints.values(), key=lambda e: e.slack)[:50]
            for ep in worst:
                credit = self.pba_depth_credit * ep.path_depth
                ep.arrival -= credit
                ep.slack += credit
            report.runtime_proxy *= 1.8  # PBA is expensive
        return report

    def _runtime_proxy(self, ops: int) -> float:
        return float(ops) * 6.0  # SI + derate bookkeeping cost


# ----------------------------------------------------------------------
# Frozen copy of the pre-refactor TimingOptimizer (repro.eda.opt): the
# full-reanalysis optimize/fix_hold loops, verbatim, driving the frozen
# engines above through their historical ``analyze`` entry point.

from dataclasses import field as _field  # noqa: E402
from repro.eda.library import DRIVE_STRENGTHS  # noqa: E402


@dataclass
class ReferenceOptResult:
    """Outcome of one optimization run (historical field set)."""

    passes: int
    upsizes: int = 0
    downsizes: int = 0
    vt_swaps: int = 0
    final_report: Optional[TimingReport] = None
    area_delta: float = 0.0
    leakage_delta: float = 0.0
    history: List[float] = _field(default_factory=list)  # wns per pass

    @property
    def total_ops(self) -> int:
        return self.upsizes + self.downsizes + self.vt_swaps


class ReferenceTimingOptimizer:
    """Slack-driven sizing and VT assignment (historical full-STA loop)."""

    def __init__(
        self,
        max_passes: int = 8,
        cells_per_pass: int = 24,
        guardband: float = 0.0,
        recover_power: bool = True,
    ):
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        if cells_per_pass < 1:
            raise ValueError("cells_per_pass must be >= 1")
        if guardband < 0:
            raise ValueError("guardband must be non-negative")
        self.max_passes = max_passes
        self.cells_per_pass = cells_per_pass
        self.guardband = guardband
        self.recover_power = recover_power

    def optimize(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        sta: _BaseSTA,
        skews: Optional[Dict[str, float]] = None,
        congestion=None,
        seed: Optional[int] = None,
    ) -> ReferenceOptResult:
        rng = np.random.default_rng(seed)
        area_before = netlist.total_area
        leak_before = netlist.total_leakage
        result = ReferenceOptResult(passes=0)

        report = sta.analyze(netlist, placement, clock_period, skews, congestion)
        result.history.append(report.wns)
        for _ in range(self.max_passes):
            result.passes += 1
            effective_wns = report.wns - self.guardband
            if effective_wns < 0:
                changed = self._fix_timing(netlist, placement, report, rng, result)
            elif self.recover_power:
                changed = self._recover_power(netlist, report, rng, result)
            else:
                changed = False
            if not changed:
                break
            report = sta.analyze(netlist, placement, clock_period, skews, congestion)
            result.history.append(report.wns)
            if report.wns - self.guardband >= 0 and not self.recover_power:
                break

        result.final_report = report
        result.area_delta = netlist.total_area - area_before
        result.leakage_delta = netlist.total_leakage - leak_before
        return result

    # ------------------------------------------------------------------
    def _output_load(self, netlist, placement, inst) -> float:
        lib = netlist.library
        net = netlist.nets[inst.output_net]
        load = sum(netlist.instances[s].cell.input_cap for s, _ in net.sinks)
        load += lib.wire_c_per_um * placement.net_length(inst.output_net)
        return load

    def _upsize_gain(self, netlist, placement, inst, new_cell) -> float:
        cell = inst.cell
        load = self._output_load(netlist, placement, inst)
        delta_self = (
            (new_cell.intrinsic_delay - cell.intrinsic_delay)
            + (new_cell.drive_resistance - cell.drive_resistance) * load
        )
        delta_cap = new_cell.input_cap - cell.input_cap
        delta_pred = 0.0
        for net_name in inst.input_nets:
            driver = netlist.nets[net_name].driver
            if driver is not None:
                delta_pred += netlist.instances[driver].cell.drive_resistance * delta_cap
        return delta_self + delta_pred

    def _fix_timing(self, netlist, placement, report, rng, result) -> bool:
        failing = sorted(
            (e for e in report.endpoints.values() if e.slack - self.guardband < 0),
            key=lambda e: e.slack,
        )
        candidates: List[str] = []
        seen = set()
        for ep in failing:
            for inst_name in report.paths.get(ep.endpoint, []):
                if inst_name not in seen:
                    seen.add(inst_name)
                    candidates.append(inst_name)
            if len(candidates) >= self.cells_per_pass * 3:
                break
        if not candidates:
            return False
        rng.shuffle(candidates)
        scored = []
        lib = netlist.library
        for inst_name in candidates:
            inst = netlist.instances[inst_name]
            cell = inst.cell
            best = None
            drive_idx = DRIVE_STRENGTHS.index(cell.drive)
            if drive_idx + 1 < len(DRIVE_STRENGTHS):
                upsized = lib.resize(cell, DRIVE_STRENGTHS[drive_idx + 1])
                gain = self._upsize_gain(netlist, placement, inst, upsized)
                best = (gain, inst_name, upsized, "upsize")
            if cell.vt != "LVT":
                faster = lib.swap_vt(cell, "LVT")
                gain = self._upsize_gain(netlist, placement, inst, faster)
                if best is None or gain < best[0]:
                    best = (gain, inst_name, faster, "vt")
            if best is not None and best[0] < -1e-9:
                scored.append(best)
        if not scored:
            return False
        scored.sort(key=lambda t: t[0])
        for gain, inst_name, new_cell, kind in scored[: self.cells_per_pass]:
            netlist.replace_cell(inst_name, new_cell)
            if kind == "upsize":
                result.upsizes += 1
            else:
                result.vt_swaps += 1
        return True

    def fix_hold(
        self,
        netlist: Netlist,
        placement: Placement,
        clock_period: float,
        sta: _BaseSTA,
        skews: Optional[Dict[str, float]] = None,
        max_buffers: int = 64,
        max_passes: int = 10,
    ) -> int:
        if max_buffers < 1:
            raise ValueError("max_buffers must be >= 1")
        lib = netlist.library
        buffer_cell = lib.pick("BUF", 1, "HVT")
        inserted = 0
        for _ in range(max_passes):
            report = sta.analyze(
                netlist, placement, clock_period, skews, check_hold=True
            )
            violating = [
                name
                for name, ep in report.endpoints.items()
                if ep.kind == "setup" and ep.hold_slack < 0
            ]
            if not violating:
                return inserted
            for endpoint in violating:
                if inserted >= max_buffers:
                    raise RuntimeError(
                        f"hold not closed within {max_buffers} buffers"
                    )
                flop_name = endpoint.split("/")[0]
                flop = netlist.instances[flop_name]
                d_net = flop.input_nets[0]
                buf = netlist.insert_buffer(
                    f"hold_buf_{inserted}", buffer_cell, d_net, flop_name, 0
                )
                placement.positions[buf.name] = placement.positions[flop_name]
                inserted += 1
        report = sta.analyze(netlist, placement, clock_period, skews, check_hold=True)
        if report.n_hold_violations:
            raise RuntimeError("hold not closed within the pass budget")
        return inserted

    def _recover_power(self, netlist, report, rng, result) -> bool:
        margin = self.guardband + 40.0  # only touch comfortably-met paths
        relaxed = [e for e in report.endpoints.values() if e.slack > margin]
        if not relaxed:
            return False
        critical = set()
        for ep in report.endpoints.values():
            if ep.slack <= margin:
                critical.update(report.paths.get(ep.endpoint, []))
        candidates = [
            name
            for name, inst in netlist.instances.items()
            if name not in critical
            and not inst.cell.is_sequential
            and (inst.cell.drive > 1 or inst.cell.vt != "HVT")
        ]
        if not candidates:
            return False
        rng.shuffle(candidates)
        changed = False
        for inst_name in candidates[: self.cells_per_pass]:
            inst = netlist.instances[inst_name]
            cell = inst.cell
            if cell.vt != "HVT":
                netlist.replace_cell(inst_name, netlist.library.swap_vt(cell, "HVT"))
                result.vt_swaps += 1
                changed = True
            elif cell.drive > 1:
                drive_idx = DRIVE_STRENGTHS.index(cell.drive)
                netlist.replace_cell(inst_name, netlist.library.resize(cell, DRIVE_STRENGTHS[drive_idx - 1]))
                result.downsizes += 1
                changed = True
        return changed


#: live scalar kernels frozen by this module, checked by lint rule R011
#: ("<root-relative live path>::<qualname>" -> reference qualname); a
#: drifted pair is a lint error until the reference is re-frozen
FROZEN_PAIRS = {
    "src/repro/eda/sta.py::TimingGraph.report.trace":
        "_BaseSTA.analyze.trace",
}
