"""The end-to-end SP&R flow."""

import numpy as np
import pytest

from repro.eda.flow import FlowOptions, SPRFlow


@pytest.fixture(scope="module")
def flow_result(small_spec):
    return SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6), seed=5)


def test_flow_produces_all_steps(flow_result):
    steps = [log.step for log in flow_result.logs]
    assert steps == ["synth", "floorplan", "place", "cts", "groute", "opt", "droute", "signoff"]


def test_flow_metrics_populated(flow_result):
    assert flow_result.area > 0
    assert flow_result.power > 0
    assert flow_result.hpwl > 0
    assert flow_result.achieved_ghz > 0
    assert flow_result.runtime_proxy > 0
    assert np.isfinite(flow_result.wns)


def test_flow_is_deterministic(small_spec):
    a = SPRFlow().run(small_spec, FlowOptions(), seed=11)
    b = SPRFlow().run(small_spec, FlowOptions(), seed=11)
    assert a.area == b.area
    assert a.wns == b.wns
    assert a.final_drvs == b.final_drvs


def test_flow_seed_noise(small_spec):
    areas = {SPRFlow().run(small_spec, FlowOptions(), seed=s).wns for s in range(3)}
    assert len(areas) > 1


def test_success_requires_routing_and_timing(flow_result):
    assert flow_result.success == (flow_result.routed and flow_result.timing_met)


def test_meets_constraints(flow_result):
    if flow_result.success:
        assert flow_result.meets()
        assert not flow_result.meets(max_area=flow_result.area / 2)
        assert not flow_result.meets(max_power=flow_result.power / 2)


def test_aggressive_target_fails_timing(small_spec):
    result = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=5.0), seed=1)
    assert not result.timing_met
    assert result.wns < 0


def test_log_text_format(flow_result):
    text = flow_result.log_text()
    assert "SP&R flow log" in text
    assert "droute.drvs[0]" in text
    assert "signoff.wns" in text


def test_step_log_series_printed_in_sorted_order():
    """Log text must not depend on series insertion order — parsers and
    golden-log diffs rely on a canonical layout."""
    from repro.eda.flow import StepLog

    forward = StepLog("opt", {"m": 1.0},
                      {"wns": [1.0, 2.0], "area": [3.0], "drvs": [4.0]})
    backward = StepLog("opt", {"m": 1.0},
                       {"drvs": [4.0], "area": [3.0], "wns": [1.0, 2.0]})
    assert forward.to_text() == backward.to_text()
    lines = forward.to_text().splitlines()
    series_lines = [ln for ln in lines if "[" in ln]
    assert series_lines == sorted(series_lines)
    assert series_lines[0].startswith("opt.area[0]")


def test_flow_options_immutable_with_override():
    opts = FlowOptions(target_clock_ghz=0.7)
    faster = opts.with_(target_clock_ghz=0.9)
    assert opts.target_clock_ghz == 0.7
    assert faster.target_clock_ghz == 0.9
    assert faster.utilization == opts.utilization


def test_flow_options_validation():
    with pytest.raises(ValueError):
        FlowOptions(target_clock_ghz=0.0)
    with pytest.raises(ValueError):
        FlowOptions(synth_effort=2.0)
    with pytest.raises(ValueError):
        FlowOptions(utilization=0.99)


@pytest.mark.parametrize("bad, message", [
    (dict(target_clock_ghz=float("inf")), "target_clock_ghz"),
    (dict(aspect_ratio=0.05), "aspect_ratio"),
    (dict(aspect_ratio=20.0), "aspect_ratio"),
    (dict(placer_moves_per_cell=0), "placer_moves_per_cell"),
    (dict(spread_strength=0.0), "spread_strength"),
    (dict(spread_strength=11.0), "spread_strength"),
    (dict(cts_effort=7), "cts_effort"),
    (dict(cts_effort=-0.1), "cts_effort"),
    (dict(router_tracks_per_um=0.0), "router_tracks_per_um"),
    (dict(router_effort=-0.5), "router_effort"),
    (dict(router_effort=1.5), "router_effort"),
    (dict(router_max_iterations=0), "router_max_iterations"),
    (dict(opt_passes=-1), "opt_passes"),
    (dict(opt_passes=0), "opt_passes"),
    (dict(opt_cells_per_pass=0), "opt_cells_per_pass"),
    (dict(opt_guardband=-1.0), "opt_guardband"),
    (dict(power_recovery=1), "power_recovery"),
])
def test_every_knob_is_validated(bad, message):
    """All 14 knobs reject out-of-range values at construction, with
    the knob name in the message — not deep inside a flow step."""
    with pytest.raises(ValueError, match=message):
        FlowOptions(**bad)


def test_reported_seed_reproduces_the_run(small_spec):
    """FlowResult.seed must replay the run through the same entry
    point (the seed-threading regression: run() used to report a
    derived step seed instead of the caller's)."""
    first = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6), seed=21)
    assert first.seed == 21
    assert "seed=21" in first.log_text().splitlines()[0]
    replay = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6),
                           seed=first.seed)
    assert replay.area == first.area
    assert replay.wns == first.wns
    assert replay.final_drvs == first.final_drvs
    assert replay.logs == first.logs


def test_implement_reports_its_own_seed(small_spec, library):
    from repro.eda.synthesis import synthesize

    netlist = synthesize(small_spec, library, effort=0.5, seed=7)  # private copy:
    result = SPRFlow().implement(netlist, FlowOptions(), seed=33)  # implement mutates
    assert result.seed == 33


def test_default_library_single_instance_under_concurrency():
    """Concurrent first callers must share one library (the lazy
    global used to race)."""
    import threading

    import repro.eda.flow as flow_mod

    original = flow_mod._LIBRARY
    try:
        flow_mod._LIBRARY = None
        barrier = threading.Barrier(4)
        seen = []

        def grab():
            barrier.wait()
            seen.append(flow_mod._default_library())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 4
        assert all(lib is seen[0] for lib in seen)
    finally:
        flow_mod._LIBRARY = original


def test_option_space_is_enormous():
    """The paper: 'well over ten thousand command-option combinations'."""
    assert FlowOptions.option_space_size() > 10_000


def test_clock_period_conversion():
    assert FlowOptions(target_clock_ghz=0.5).clock_period_ps == pytest.approx(2000.0)


def test_stop_callback_reaches_router(small_spec):
    calls = []

    def stop(history):
        calls.append(len(history))
        return False

    SPRFlow(stop_callback=stop).run(small_spec, FlowOptions(), seed=3)
    assert calls  # the detailed router consulted the callback


def test_guardband_option_inflates_area(small_spec):
    """A pessimistic flow does unneeded sizing work (Sec 3.2 claim)."""
    lean = SPRFlow().run(
        small_spec, FlowOptions(target_clock_ghz=0.9, opt_guardband=0.0,
                                power_recovery=False), seed=7
    )
    pessimistic = SPRFlow().run(
        small_spec, FlowOptions(target_clock_ghz=0.9, opt_guardband=200.0,
                                power_recovery=False), seed=7
    )
    assert pessimistic.area >= lean.area
