"""The end-to-end SP&R flow."""

import numpy as np
import pytest

from repro.eda.flow import FlowOptions, SPRFlow


@pytest.fixture(scope="module")
def flow_result(small_spec):
    return SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6), seed=5)


def test_flow_produces_all_steps(flow_result):
    steps = [log.step for log in flow_result.logs]
    assert steps == ["synth", "floorplan", "place", "cts", "groute", "opt", "droute", "signoff"]


def test_flow_metrics_populated(flow_result):
    assert flow_result.area > 0
    assert flow_result.power > 0
    assert flow_result.hpwl > 0
    assert flow_result.achieved_ghz > 0
    assert flow_result.runtime_proxy > 0
    assert np.isfinite(flow_result.wns)


def test_flow_is_deterministic(small_spec):
    a = SPRFlow().run(small_spec, FlowOptions(), seed=11)
    b = SPRFlow().run(small_spec, FlowOptions(), seed=11)
    assert a.area == b.area
    assert a.wns == b.wns
    assert a.final_drvs == b.final_drvs


def test_flow_seed_noise(small_spec):
    areas = {SPRFlow().run(small_spec, FlowOptions(), seed=s).wns for s in range(3)}
    assert len(areas) > 1


def test_success_requires_routing_and_timing(flow_result):
    assert flow_result.success == (flow_result.routed and flow_result.timing_met)


def test_meets_constraints(flow_result):
    if flow_result.success:
        assert flow_result.meets()
        assert not flow_result.meets(max_area=flow_result.area / 2)
        assert not flow_result.meets(max_power=flow_result.power / 2)


def test_aggressive_target_fails_timing(small_spec):
    result = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=5.0), seed=1)
    assert not result.timing_met
    assert result.wns < 0


def test_log_text_format(flow_result):
    text = flow_result.log_text()
    assert "SP&R flow log" in text
    assert "droute.drvs[0]" in text
    assert "signoff.wns" in text


def test_flow_options_immutable_with_override():
    opts = FlowOptions(target_clock_ghz=0.7)
    faster = opts.with_(target_clock_ghz=0.9)
    assert opts.target_clock_ghz == 0.7
    assert faster.target_clock_ghz == 0.9
    assert faster.utilization == opts.utilization


def test_flow_options_validation():
    with pytest.raises(ValueError):
        FlowOptions(target_clock_ghz=0.0)
    with pytest.raises(ValueError):
        FlowOptions(synth_effort=2.0)
    with pytest.raises(ValueError):
        FlowOptions(utilization=0.99)


def test_option_space_is_enormous():
    """The paper: 'well over ten thousand command-option combinations'."""
    assert FlowOptions.option_space_size() > 10_000


def test_clock_period_conversion():
    assert FlowOptions(target_clock_ghz=0.5).clock_period_ps == pytest.approx(2000.0)


def test_stop_callback_reaches_router(small_spec):
    calls = []

    def stop(history):
        calls.append(len(history))
        return False

    SPRFlow(stop_callback=stop).run(small_spec, FlowOptions(), seed=3)
    assert calls  # the detailed router consulted the callback


def test_guardband_option_inflates_area(small_spec):
    """A pessimistic flow does unneeded sizing work (Sec 3.2 claim)."""
    lean = SPRFlow().run(
        small_spec, FlowOptions(target_clock_ghz=0.9, opt_guardband=0.0,
                                power_recovery=False), seed=7
    )
    pessimistic = SPRFlow().run(
        small_spec, FlowOptions(target_clock_ghz=0.9, opt_guardband=200.0,
                                power_recovery=False), seed=7
    )
    assert pessimistic.area >= lean.area
