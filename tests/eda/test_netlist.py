"""Netlist model: construction, invariants, validation, ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.netlist import Netlist, NetlistError
from repro.eda.synthesis import DesignSpec, synthesize


def _tiny(library):
    nl = Netlist("t", library)
    nl.add_primary_input("a")
    nl.add_primary_input("b")
    clk = nl.add_primary_input("clk")
    nl.set_clock(clk.name)
    g0 = nl.add_instance("g0", library.pick("NAND2"), ["a", "b"])
    g1 = nl.add_instance("g1", library.pick("INV"), [g0.output_net])
    nl.add_instance("ff0", library.pick("DFF"), [g1.output_net, "clk"])
    nl.mark_primary_output(g1.output_net)
    return nl


def test_construction_and_counts(library):
    nl = _tiny(library)
    nl.validate()
    assert nl.n_instances == 3
    assert len(nl.sequential_instances()) == 1
    assert len(nl.combinational_instances()) == 2
    assert nl.total_area > 0
    assert nl.total_leakage > 0


def test_net_bookkeeping(library):
    nl = _tiny(library)
    assert nl.nets["a"].sinks == [("g0", 0)]
    assert nl.nets["g0_o"].driver == "g0"
    assert nl.net_fanout("g1_o") == 2  # DFF D pin + primary output


def test_combinational_order_respects_dependencies(library):
    nl = _tiny(library)
    order = nl.combinational_order()
    assert order.index("g0") < order.index("g1")


def test_logic_depth(library):
    nl = _tiny(library)
    assert nl.logic_depth() == 2


def test_duplicate_instance_rejected(library):
    nl = _tiny(library)
    with pytest.raises(NetlistError):
        nl.add_instance("g0", library.pick("INV"), ["a"])


def test_unknown_input_net_rejected(library):
    nl = _tiny(library)
    with pytest.raises(NetlistError):
        nl.add_instance("g9", library.pick("INV"), ["nope"])


def test_wrong_pin_count_rejected(library):
    nl = _tiny(library)
    with pytest.raises(ValueError):
        nl.add_instance("g9", library.pick("NAND2"), ["a"])


def test_duplicate_pi_rejected(library):
    nl = _tiny(library)
    with pytest.raises(NetlistError):
        nl.add_primary_input("a")


def test_unknown_po_rejected(library):
    nl = _tiny(library)
    with pytest.raises(NetlistError):
        nl.mark_primary_output("nope")


def test_po_mark_idempotent(library):
    nl = _tiny(library)
    nl.mark_primary_output("g1_o")
    assert nl.primary_outputs.count("g1_o") == 1


def test_combinational_cycle_detected(library):
    nl = Netlist("cyc", library)
    nl.add_primary_input("a")
    # create g0 feeding g1; then hack g0's input to g1's output
    g0 = nl.add_instance("g0", library.pick("INV"), ["a"])
    g1 = nl.add_instance("g1", library.pick("INV"), [g0.output_net])
    nl.nets["a"].sinks.remove(("g0", 0))
    g0.input_nets[0] = g1.output_net
    nl.nets[g1.output_net].sinks.append(("g0", 0))
    with pytest.raises(NetlistError):
        nl.combinational_order()


def test_sequential_loop_is_legal(library):
    """A DFF in the loop breaks the combinational cycle."""
    nl = Netlist("seq", library)
    clk = nl.add_primary_input("clk")
    nl.set_clock(clk.name)
    nl.add_primary_input("a")
    ff = nl.add_instance("ff0", library.pick("DFF"), ["a", "clk"])
    g = nl.add_instance("g0", library.pick("INV"), [ff.output_net])
    # feed the inverter back into the flop
    nl.nets["a"].sinks.remove(("ff0", 0))
    ff.input_nets[0] = g.output_net
    nl.nets[g.output_net].sinks.append(("ff0", 0))
    nl.validate()  # no exception


def test_replace_cell_same_function_only(library):
    nl = _tiny(library)
    nl.replace_cell("g0", library.pick("NAND2", 4))
    assert nl.instances["g0"].cell.drive == 4
    with pytest.raises(NetlistError):
        nl.replace_cell("g0", library.pick("NOR2", 1))


def test_stats_keys(small_netlist):
    stats = small_netlist.stats()
    for key in ("instances", "nets", "flops", "area", "depth", "avg_fanout"):
        assert key in stats


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_synthesized_netlists_validate(library, seed):
    """Any seeded synthesis run yields a structurally valid netlist with
    the requested interface size."""
    spec = DesignSpec("prop", n_gates=60, n_flops=8, n_inputs=6, n_outputs=6, depth=6)
    nl = synthesize(spec, library, effort=0.5, seed=seed)
    nl.validate()
    assert len(nl.primary_inputs) == spec.n_inputs + 1  # + clock
    assert len(nl.sequential_instances()) == spec.n_flops
    assert nl.logic_depth() >= 1
