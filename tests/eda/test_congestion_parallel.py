"""Congestion-driven re-placement and GWTW parallel placement."""

import numpy as np
import pytest

from repro.core.search.parallel_place import gwtw_place
from repro.eda.congestion import congestion_driven_replace, congestion_net_weights
from repro.eda.floorplan import make_floorplan
from repro.eda.library import make_default_library
from repro.eda.placement import AnnealingRefiner, QuadraticPlacer
from repro.eda.routing import GlobalRouter
from repro.eda.synthesis import DesignSpec, synthesize


@pytest.fixture(scope="module")
def congested_case():
    lib = make_default_library()
    nl = synthesize(
        DesignSpec("cg", n_gates=250, n_flops=24, n_inputs=12, n_outputs=12, depth=12),
        lib, effort=0.5, seed=1,
    )
    fp = make_floorplan(nl, utilization=0.85)
    return nl, fp


def _fresh_placement(case, seed=2):
    nl, fp = case
    pl = QuadraticPlacer().place(nl, fp, seed=seed)
    AnnealingRefiner(moves_per_cell=6).refine(pl, seed=seed + 1)
    return pl


def test_weights_flag_congested_nets(congested_case):
    pl = _fresh_placement(congested_case)
    route = GlobalRouter(tracks_per_um=10.0).route(pl, seed=3)
    weights = congestion_net_weights(pl, route.congestion_map(), alpha=2.0)
    assert weights
    assert all(w >= 1.0 for w in weights.values())
    assert max(weights.values()) > 1.0  # something is congested at util 0.85


def test_weights_zero_map_all_ones(congested_case):
    pl = _fresh_placement(congested_case)
    weights = congestion_net_weights(pl, np.zeros((16, 16)))
    assert all(w == 1.0 for w in weights.values())
    with pytest.raises(ValueError):
        congestion_net_weights(pl, np.zeros((16, 16)), alpha=-1.0)


def test_congestion_driven_reduces_overflow():
    """Equal-budget comparison on a congested 300-gate instance."""
    lib = make_default_library()
    nl = synthesize(
        DesignSpec("cg2", n_gates=300, n_flops=32, n_inputs=16, n_outputs=16, depth=14),
        lib, effort=0.5, seed=1,
    )
    fp = make_floorplan(nl, utilization=0.85)
    router = GlobalRouter(tracks_per_um=11.0)

    # baseline: same total annealing budget, no congestion weights
    baseline = QuadraticPlacer().place(nl, fp, seed=2)
    AnnealingRefiner(moves_per_cell=6).refine(baseline, seed=3)
    for extra_seed in (10, 11):
        AnnealingRefiner(moves_per_cell=6).refine(baseline, seed=extra_seed)
    base_overflow = router.route(baseline, seed=4).overflow

    driven = QuadraticPlacer().place(nl, fp, seed=2)
    AnnealingRefiner(moves_per_cell=6).refine(driven, seed=3)
    final_route = congestion_driven_replace(driven, router, n_iterations=2, seed=5)
    assert final_route.overflow < base_overflow * 1.02
    driven.validate()


def test_congestion_driven_validation(congested_case):
    pl = _fresh_placement(congested_case)
    with pytest.raises(ValueError):
        congestion_driven_replace(pl, n_iterations=0)


def test_weighted_refine_changes_solution(congested_case):
    a = _fresh_placement(congested_case, seed=9)
    b = _fresh_placement(congested_case, seed=9)
    heavy_net = next(
        n for n, net in a.netlist.nets.items()
        if n != a.netlist.clock_net and len(net.sinks) >= 2
    )
    AnnealingRefiner(moves_per_cell=6).refine(a, seed=10)
    AnnealingRefiner(moves_per_cell=6).refine(b, seed=10, net_weights={heavy_net: 50.0})
    # the emphasized net should end up shorter under weighting
    assert b.net_length(heavy_net) <= a.net_length(heavy_net)


def test_negative_weight_rejected(congested_case):
    pl = _fresh_placement(congested_case)
    some_net = next(iter(w for w in pl.netlist.nets if w != pl.netlist.clock_net))
    with pytest.raises(ValueError):
        AnnealingRefiner(moves_per_cell=1).refine(pl, seed=1, net_weights={some_net: 0.0})


# --------------------------------------------------------------- gwtw place
def test_gwtw_place_beats_single_thread(congested_case):
    nl, fp = congested_case
    single = QuadraticPlacer().place(nl, fp, seed=2)
    single_hpwl = AnnealingRefiner(moves_per_cell=16).refine(single, seed=6)

    parallel = QuadraticPlacer().place(nl, fp, seed=2)
    result = gwtw_place(parallel, n_threads=4, n_stages=4,
                        moves_per_cell_per_stage=4, seed=7)
    # equal per-thread budget split over stages; cloning should not lose
    assert result.hpwl <= single_hpwl * 1.02
    assert result.hpwl == pytest.approx(parallel.hpwl(), rel=1e-9)
    parallel.validate()


def test_gwtw_place_trace_monotone(congested_case):
    nl, fp = congested_case
    pl = QuadraticPlacer().place(nl, fp, seed=3)
    result = gwtw_place(pl, n_threads=3, n_stages=3, moves_per_cell_per_stage=3, seed=8)
    assert all(a >= b - 1e-9 for a, b in zip(result.hpwl_trace, result.hpwl_trace[1:]))
    assert result.total_moves == 3 * 3 * 3 * len(pl.positions)


def test_gwtw_place_validation(congested_case):
    nl, fp = congested_case
    pl = QuadraticPlacer().place(nl, fp, seed=4)
    with pytest.raises(ValueError):
        gwtw_place(pl, n_threads=1)
    with pytest.raises(ValueError):
        gwtw_place(pl, n_stages=0)
    with pytest.raises(ValueError):
        gwtw_place(pl, survivor_fraction=1.0)
