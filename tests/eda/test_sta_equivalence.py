"""Frozen-reference equivalence for the repro.eda.sta refactor.

The kernel rewrite (TimingGraph + delay policies + thin engine drivers)
must be *bit-identical* to the pre-refactor monolithic engines — same
floats, same endpoint order, same runtime proxy, same optimizer
decisions — enforced here against ``tests/eda/sta_reference.py``, a
verbatim copy of the old ``repro.eda.timing``/``repro.eda.opt`` code.
"""

import copy

import numpy as np
import pytest

from repro.eda.mmmc import DEFAULT_VIEWS, AnalysisView, MMMCAnalyzer, MMMCReport
from repro.eda.opt import TimingOptimizer
from repro.eda.sta import (
    FAST,
    SLOW,
    TYPICAL,
    GraphSTA,
    SignoffSTA,
    TimingReport,
    TimingTopology,
)
from tests.eda import sta_reference as ref
from tests.eda.test_steiner_hold import _skewed_setup

_EP_FIELDS = (
    "endpoint", "kind", "arrival", "required", "slack", "path_depth",
    "path_wire_delay", "path_cell_delay", "path_max_fanout", "path_slew",
    "hold_slack",
)

CORNERS = {"tt": (TYPICAL, ref.TYPICAL), "ss": (SLOW, ref.SLOW), "ff": (FAST, ref.FAST)}


def assert_reports_identical(got, want, compare_proxy=True):
    """Field-for-field, bit-for-bit equality of two timing reports.

    ``compare_proxy=False`` is for reports produced by the incremental
    path: its QoR must be bitwise identical to a from-scratch run, but
    its runtime proxy is *smaller* — that difference is the whole point.
    """
    assert got.engine == want.engine
    assert got.corner == want.corner
    assert got.clock_period == want.clock_period
    if compare_proxy:
        assert got.runtime_proxy == want.runtime_proxy
    else:
        assert got.runtime_proxy <= want.runtime_proxy
    assert list(got.endpoints) == list(want.endpoints)
    for name in got.endpoints:
        ep_got, ep_want = got.endpoints[name], want.endpoints[name]
        for field in _EP_FIELDS:
            assert getattr(ep_got, field) == getattr(ep_want, field), (name, field)
    assert got.paths == want.paths


@pytest.fixture(scope="module")
def skews(small_netlist):
    rng = np.random.default_rng(5)
    return {
        inst.name: float(rng.normal(0.0, 4.0))
        for inst in small_netlist.sequential_instances()
    }


# ---------------------------------------------------------------- fresh path
@pytest.mark.parametrize("corner", sorted(CORNERS))
@pytest.mark.parametrize("check_hold", [False, True])
def test_graph_engine_fresh_equivalence(
    small_netlist, small_placement, small_congestion, skews, corner, check_hold
):
    new_corner, ref_corner = CORNERS[corner]
    got = GraphSTA(new_corner).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    want = ref.GraphSTA(ref_corner).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    assert_reports_identical(got, want)


@pytest.mark.parametrize("corner", sorted(CORNERS))
@pytest.mark.parametrize("pba", [False, True])
@pytest.mark.parametrize("check_hold", [False, True])
def test_signoff_engine_fresh_equivalence(
    small_netlist, small_placement, small_congestion, skews, corner, pba, check_hold
):
    new_corner, ref_corner = CORNERS[corner]
    got = SignoffSTA(new_corner, pba=pba).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    want = ref.SignoffSTA(ref_corner, pba=pba).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    assert_reports_identical(got, want)


def test_fresh_equivalence_without_skew_or_congestion(small_netlist, small_placement):
    got = SignoffSTA().analyze(small_netlist, small_placement, 900.0)
    want = ref.SignoffSTA().analyze(small_netlist, small_placement, 900.0)
    assert_reports_identical(got, want)


# ------------------------------------------ vectorized vs scalar kernel
def assert_graph_states_identical(vec, scalar):
    """Every propagated state map agrees key-for-key, bit-for-bit."""
    for attr in ("_arrival", "_arrival_min", "_slew", "_pred"):
        got = dict(getattr(vec, attr).items())
        want = dict(getattr(scalar, attr).items())
        assert got == want, attr


@pytest.mark.parametrize("corner", sorted(CORNERS))
@pytest.mark.parametrize("check_hold", [False, True])
def test_vectorized_graph_kernel_matches_scalar_and_reference(
    small_netlist, small_placement, small_congestion, skews, corner, check_hold
):
    new_corner, ref_corner = CORNERS[corner]
    engine = GraphSTA(new_corner)
    graphs = {}
    for vectorize in (True, False):
        g = engine.build_graph(
            small_netlist, small_placement, skews=skews,
            congestion=small_congestion, check_hold=check_hold,
            vectorize=vectorize,
        )
        g.full_propagate()
        graphs[vectorize] = g
    assert_graph_states_identical(graphs[True], graphs[False])
    want = ref.GraphSTA(ref_corner).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    assert_reports_identical(graphs[True].report(1100.0), want)
    assert_reports_identical(graphs[False].report(1100.0), want)


@pytest.mark.parametrize("corner", sorted(CORNERS))
@pytest.mark.parametrize("pba", [False, True])
@pytest.mark.parametrize("check_hold", [False, True])
def test_vectorized_signoff_kernel_matches_scalar_and_reference(
    small_netlist, small_placement, small_congestion, skews, corner, pba, check_hold
):
    new_corner, ref_corner = CORNERS[corner]
    engine = SignoffSTA(new_corner, pba=pba)
    graphs = {}
    for vectorize in (True, False):
        g = engine.build_graph(
            small_netlist, small_placement, skews=skews,
            congestion=small_congestion, check_hold=check_hold,
            vectorize=vectorize,
        )
        g.full_propagate()
        graphs[vectorize] = g
    assert_graph_states_identical(graphs[True], graphs[False])
    want = ref.SignoffSTA(ref_corner, pba=pba).analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        check_hold=check_hold,
    )
    assert_reports_identical(graphs[True].report(1100.0), want)
    assert_reports_identical(graphs[False].report(1100.0), want)


def test_vectorized_kernel_charges_identical_proxy(
    small_netlist, small_placement, small_congestion, skews
):
    """The SoA kernel counts the same ops as the scalar loop — the
    runtime-proxy cost model must not notice the implementation."""
    engine = SignoffSTA(SLOW)
    stats = {}
    for vectorize in (True, False):
        g = engine.build_graph(
            small_netlist, small_placement, skews=skews,
            congestion=small_congestion, check_hold=True, vectorize=vectorize,
        )
        g.full_propagate()
        g.report(1100.0)
        stats[vectorize] = g.stats
    assert stats[True].proxy_executed == stats[False].proxy_executed
    assert stats[True].proxy_full_equivalent == stats[False].proxy_full_equivalent


# ----------------------------------------------------------- optimizer loop
@pytest.mark.parametrize("period,guardband,seed", [
    (600.0, 0.0, 0),     # deeply failing: _fix_timing passes
    (700.0, 60.0, 11),   # guardbanded near the wall
    (1600.0, 0.0, 3),    # relaxed: power recovery passes
])
def test_incremental_optimizer_matches_reference(
    small_netlist, small_placement, small_congestion, skews, period, guardband, seed
):
    nl_a, pl_a = copy.deepcopy((small_netlist, small_placement))
    nl_b, pl_b = copy.deepcopy((small_netlist, small_placement))

    live = TimingOptimizer(guardband=guardband).optimize(
        nl_a, pl_a, period, GraphSTA(), skews, small_congestion, seed,
        incremental=True,
    )
    golden = ref.ReferenceTimingOptimizer(guardband=guardband).optimize(
        nl_b, pl_b, period, ref.GraphSTA(), skews, small_congestion, seed,
    )

    assert live.passes == golden.passes
    assert live.upsizes == golden.upsizes
    assert live.downsizes == golden.downsizes
    assert live.vt_swaps == golden.vt_swaps
    assert live.history == golden.history
    assert live.area_delta == golden.area_delta
    assert live.leakage_delta == golden.leakage_delta
    assert_reports_identical(live.final_report, golden.final_report,
                             compare_proxy=False)
    # the surgeries themselves are identical, cell for cell
    assert {n: i.cell.name for n, i in nl_a.instances.items()} == {
        n: i.cell.name for n, i in nl_b.instances.items()
    }


def test_optimizer_did_real_work(small_netlist, small_placement, small_congestion, skews):
    """Guard the parametrization above: both loop branches must fire."""
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    tight = TimingOptimizer().optimize(nl, pl, 600.0, GraphSTA(), skews,
                                       small_congestion, 0)
    assert tight.upsizes + tight.vt_swaps > 0
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    loose = TimingOptimizer().optimize(nl, pl, 1600.0, GraphSTA(), skews,
                                       small_congestion, 3)
    assert loose.downsizes + loose.vt_swaps > 0


def test_incremental_optimizer_saves_proxy(
    small_netlist, small_placement, small_congestion, skews
):
    nl, pl = copy.deepcopy((small_netlist, small_placement))
    result = TimingOptimizer().optimize(
        nl, pl, 600.0, GraphSTA(), skews, small_congestion, 0, incremental=True
    )
    stats = result.sta_stats
    assert stats is not None
    assert stats.full_propagates == 1
    assert stats.incremental_updates == result.passes or \
        stats.incremental_updates == result.passes - 1  # last pass may not change
    assert stats.proxy_saved > 0
    assert stats.proxy_executed < stats.proxy_full_equivalent


def test_non_incremental_optimizer_matches_reference_and_charges_full(
    small_netlist, small_placement, small_congestion, skews
):
    nl_a, pl_a = copy.deepcopy((small_netlist, small_placement))
    nl_b, pl_b = copy.deepcopy((small_netlist, small_placement))
    live = TimingOptimizer().optimize(
        nl_a, pl_a, 600.0, GraphSTA(), skews, small_congestion, 0, incremental=False
    )
    golden = ref.ReferenceTimingOptimizer().optimize(
        nl_b, pl_b, 600.0, ref.GraphSTA(), skews, small_congestion, 0
    )
    assert live.history == golden.history
    assert_reports_identical(live.final_report, golden.final_report)
    assert live.sta_stats.incremental_updates == 0
    assert live.sta_stats.proxy_saved == 0.0


def test_fix_hold_matches_reference(library):
    nl_a, pl_a, skews_a = _skewed_setup(library)
    nl_b, pl_b, skews_b = _skewed_setup(library)
    inserted = TimingOptimizer().fix_hold(
        nl_a, pl_a, 1500.0, GraphSTA(), skews=skews_a, incremental=True
    )
    golden = ref.ReferenceTimingOptimizer().fix_hold(
        nl_b, pl_b, 1500.0, ref.GraphSTA(), skews=skews_b
    )
    assert inserted == golden > 0
    assert set(nl_a.instances) == set(nl_b.instances)
    report_a = GraphSTA().analyze(nl_a, pl_a, 1500.0, skews_a, check_hold=True)
    report_b = ref.GraphSTA().analyze(nl_b, pl_b, 1500.0, skews_b, check_hold=True)
    assert_reports_identical(report_a, report_b)


# ------------------------------------------------------------------- MMMC
def test_mmmc_matches_reference_per_view(
    small_netlist, small_placement, small_congestion, skews
):
    merged = MMMCAnalyzer().analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion
    )
    ref_engines = {
        "setup_ss": (ref.SignoffSTA(ref.SLOW), False),
        "hold_ff": (ref.SignoffSTA(ref.FAST), True),
        "typ_tt": (ref.SignoffSTA(ref.TYPICAL), True),
    }
    assert list(merged.reports) == [v.name for v in DEFAULT_VIEWS]
    for name, (engine, check_hold) in ref_engines.items():
        want = engine.analyze(
            small_netlist, small_placement, 1100.0, skews=skews,
            congestion=small_congestion, check_hold=check_hold,
        )
        assert_reports_identical(merged.reports[name], want)


def test_mmmc_graph_views_match_reference(small_netlist, small_placement, skews):
    views = (
        AnalysisView("g_ss", SLOW, "graph"),
        AnalysisView("g_ff", FAST, "graph", check_hold=True),
    )
    merged = MMMCAnalyzer(views).analyze(small_netlist, small_placement, 1100.0, skews)
    assert_reports_identical(
        merged.reports["g_ss"],
        ref.GraphSTA(ref.SLOW).analyze(small_netlist, small_placement, 1100.0, skews),
    )
    assert_reports_identical(
        merged.reports["g_ff"],
        ref.GraphSTA(ref.FAST).analyze(
            small_netlist, small_placement, 1100.0, skews, check_hold=True
        ),
    )


def test_mmmc_engines_hoisted_to_init(small_netlist, small_placement, skews):
    analyzer = MMMCAnalyzer()
    engines_before = dict(analyzer.engines)
    first = analyzer.analyze(small_netlist, small_placement, 1100.0, skews)
    second = analyzer.analyze(small_netlist, small_placement, 1100.0, skews)
    # same engine objects across calls, and repeat calls are bit-stable
    assert all(analyzer.engines[k] is engines_before[k] for k in engines_before)
    for name in first.reports:
        assert_reports_identical(first.reports[name], second.reports[name])


def test_mmmc_shared_topology_is_equivalent(
    small_netlist, small_placement, small_congestion, skews
):
    topo = TimingTopology(small_netlist, small_placement)
    with_topo = MMMCAnalyzer().analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion,
        topology=topo,
    )
    without = MMMCAnalyzer().analyze(
        small_netlist, small_placement, 1100.0, skews, small_congestion
    )
    for name in with_topo.reports:
        assert_reports_identical(with_topo.reports[name], without.reports[name])


def test_mmmc_rejects_bad_period(small_netlist, small_placement):
    with pytest.raises(ValueError):
        MMMCAnalyzer().analyze(small_netlist, small_placement, 0.0)


def test_mmmc_worst_view_tie_breaks_deterministically():
    def fake_report(wns):
        report = TimingReport(engine="signoff", corner="tt", clock_period=1000.0)
        from repro.eda.sta import EndpointTiming

        report.endpoints["x/D"] = EndpointTiming(
            endpoint="x/D", kind="setup", arrival=0.0, required=wns, slack=wns,
            path_depth=1, path_wire_delay=0.0, path_cell_delay=0.0,
            path_max_fanout=1, path_slew=20.0, hold_slack=wns,
        )
        return report

    merged = MMMCReport()
    merged.reports["first"] = fake_report(-5.0)
    merged.reports["second"] = fake_report(-5.0)  # exact tie
    merged.reports["third"] = fake_report(0.0)
    assert merged.worst_setup_view == "first"
    assert merged.worst_hold_view == "first"
