"""Vectorized placement/routing kernels vs the frozen scalar references.

Triple equivalence, mirroring the STA suite: for every kernel the
struct-of-arrays fast path (``vectorize=True``), the in-tree scalar
path (``vectorize=False``), and the frozen post-bugfix reference
(``tests/eda/placement_reference.py`` / ``routing_reference.py``) must
agree **bitwise** — positions, HPWL, demand grids, congestion maps, and
DRV trajectories — across three designs (one with a macro) and three
seeds, with and without net-weight overlays.
"""

from __future__ import annotations

import copy
import functools

import numpy as np
import pytest

from repro.eda.floorplan import Macro, make_floorplan
from repro.eda.library import make_default_library
from repro.eda.placement import AnnealingRefiner, QuadraticPlacer
from repro.eda.routing import DetailedRouter, GlobalRouter
from repro.eda.synthesis import DesignSpec, synthesize

from .placement_reference import ReferenceAnnealingRefiner, ReferenceQuadraticPlacer
from .routing_reference import ReferenceDetailedRouter, ReferenceGlobalRouter

SEEDS = (3, 11, 29)

SPECS = {
    "logic": DesignSpec(name="logic", n_gates=110, n_flops=14, n_inputs=8,
                        n_outputs=8, depth=9, locality=0.8),
    "datapath": DesignSpec(name="datapath", n_gates=170, n_flops=24, n_inputs=12,
                           n_outputs=10, depth=12, locality=0.55),
    "macroized": DesignSpec(name="macroized", n_gates=140, n_flops=18, n_inputs=10,
                            n_outputs=6, depth=10, locality=0.7),
}


@functools.lru_cache(maxsize=None)
def _floorplanned(design: str):
    netlist = synthesize(SPECS[design], make_default_library(), effort=0.5, seed=17)
    fp = make_floorplan(netlist, utilization=0.7)
    if design == "macroized":
        fp.add_macro(Macro("ram", x=fp.width * 0.15, y=fp.height * 0.2,
                           width=fp.width * 0.25, height=fp.height * 0.3))
    return netlist, fp


@functools.lru_cache(maxsize=None)
def _placed(design: str, seed: int):
    """One legalized placement per (design, seed), placed by the fast path."""
    netlist, fp = _floorplanned(design)
    return QuadraticPlacer().place(netlist, fp, seed=seed)


def _weights(netlist):
    """A deterministic non-trivial net-weight overlay."""
    return {name: 1.0 + 0.5 * (i % 4)
            for i, name in enumerate(netlist.nets) if i % 3 == 0}


def _positions_equal(a, b):
    assert set(a.positions) == set(b.positions)
    for name, pos in a.positions.items():
        assert pos == b.positions[name], name


# ----------------------------------------------------------------- placer
@pytest.mark.parametrize("design", sorted(SPECS))
@pytest.mark.parametrize("seed", SEEDS)
def test_placer_triple_equivalence(design, seed):
    netlist, fp = _floorplanned(design)
    fast = QuadraticPlacer(vectorize=True).place(netlist, fp, seed=seed)
    scalar = QuadraticPlacer(vectorize=False).place(netlist, fp, seed=seed)
    reference = ReferenceQuadraticPlacer().place(netlist, fp, seed=seed)
    _positions_equal(fast, scalar)
    _positions_equal(fast, reference)
    assert fast.hpwl() == scalar.hpwl() == reference.hpwl()
    fast.validate()


# --------------------------------------------------------------- annealer
@pytest.mark.parametrize("design", sorted(SPECS))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("weighted", (False, True))
def test_annealer_triple_equivalence(design, seed, weighted):
    base = _placed(design, seed)
    weights = _weights(base.netlist) if weighted else None
    p_fast = copy.deepcopy(base)
    p_scalar = copy.deepcopy(base)
    p_ref = copy.deepcopy(base)
    fast = AnnealingRefiner(moves_per_cell=8, vectorize=True)
    scalar = AnnealingRefiner(moves_per_cell=8, vectorize=False)
    reference = ReferenceAnnealingRefiner(moves_per_cell=8)
    h_fast = fast.refine(p_fast, seed=seed + 1, net_weights=weights)
    h_scalar = scalar.refine(p_scalar, seed=seed + 1, net_weights=weights)
    h_ref = reference.refine(p_ref, seed=seed + 1, net_weights=weights)
    assert h_fast == h_scalar == h_ref
    _positions_equal(p_fast, p_scalar)
    _positions_equal(p_fast, p_ref)
    # the evaluated temperature schedules agree too
    assert fast.last_schedule == scalar.last_schedule
    assert fast.last_schedule.first_temperature == reference.last_first_temperature
    assert fast.last_schedule.last_temperature == reference.last_last_temperature
    assert fast.last_schedule.n_evaluated == reference.last_n_evaluated


# ----------------------------------------------------------- global route
@pytest.mark.parametrize("design", sorted(SPECS))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("tracks", (16.0, 6.0))
def test_groute_triple_equivalence(design, seed, tracks):
    placement = _placed(design, seed)
    fast = GlobalRouter(tracks_per_um=tracks, vectorize=True).route(placement, seed=seed)
    scalar = GlobalRouter(tracks_per_um=tracks, vectorize=False).route(placement, seed=seed)
    reference = ReferenceGlobalRouter(tracks_per_um=tracks).route(placement, seed=seed)
    for other in (scalar, reference):
        assert np.array_equal(fast.demand_h, other.demand_h)
        assert np.array_equal(fast.demand_v, other.demand_v)
        assert fast.wirelength == other.wirelength
        assert fast.capacity_h == other.capacity_h
        assert fast.capacity_v == other.capacity_v
        assert np.array_equal(fast.congestion_map(), other.congestion_map())
        assert fast.overflow == other.overflow
        assert fast.max_congestion == other.max_congestion


def test_groute_segments_identical_on_nondefault_grid():
    """The lexsort segment build matches the per-net build off-square too."""
    placement = _placed("datapath", 3)
    fast_router = GlobalRouter(nx=9, ny=21)
    scalar_router = GlobalRouter(nx=9, ny=21)
    assert fast_router._segments_fast(placement) == \
        scalar_router._segments_scalar(placement)


# --------------------------------------------------------- detailed route
@pytest.mark.parametrize("design", sorted(SPECS))
@pytest.mark.parametrize("seed", SEEDS)
def test_droute_triple_equivalence(design, seed):
    placement = _placed(design, seed)
    congestion = GlobalRouter(tracks_per_um=7.0).route(placement, seed=seed).congestion_map()
    fast = DetailedRouter(vectorize=True).route(congestion, seed=seed)
    scalar = DetailedRouter(vectorize=False).route(congestion, seed=seed)
    reference = ReferenceDetailedRouter().route(congestion, seed=seed)
    assert fast.drvs_per_iteration == scalar.drvs_per_iteration
    assert fast.drvs_per_iteration == reference.drvs_per_iteration
    assert (fast.success, fast.iterations_run, fast.stopped_early) == \
        (reference.success, reference.iterations_run, reference.stopped_early)
    assert fast.metadata == reference.metadata
