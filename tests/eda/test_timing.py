"""Static timing: propagation correctness and engine miscorrelation."""

import numpy as np
import pytest

from repro.eda.netlist import Netlist
from repro.eda.timing import (
    Corner,
    FAST,
    GraphSTA,
    SLOW,
    SignoffSTA,
    TYPICAL,
)
from repro.eda.placement import Placement
from repro.eda.floorplan import Floorplan


@pytest.fixture(scope="module")
def chain(library):
    """in0 -> INV -> INV -> DFF, hand-placeable."""
    nl = Netlist("chain", library)
    nl.add_primary_input("in0")
    clk = nl.add_primary_input("clk")
    nl.set_clock(clk.name)
    g0 = nl.add_instance("g0", library.pick("INV"), ["in0"])
    g1 = nl.add_instance("g1", library.pick("INV"), [g0.output_net])
    nl.add_instance("ff0", library.pick("DFF"), [g1.output_net, "clk"])
    nl.mark_primary_output(g1.output_net)
    nl.validate()
    return nl


@pytest.fixture(scope="module")
def chain_placement(chain):
    fp = Floorplan(width=10.0, height=10.0, utilization=0.5)
    fp.pad_positions["in0"] = (0.0, 5.0)
    fp.pad_positions[chain.instances["g1"].output_net] = (10.0, 5.0)
    positions = {"g0": (2.0, 5.0), "g1": (5.0, 5.0), "ff0": (8.0, 5.0)}
    return Placement(chain, fp, positions)


def test_endpoints_enumerated(chain, chain_placement):
    report = GraphSTA().analyze(chain, chain_placement, clock_period=1000.0)
    assert "ff0/D" in report.endpoints
    assert any(name.endswith("/PO") for name in report.endpoints)


def test_slack_decreases_with_period(chain, chain_placement):
    loose = GraphSTA().analyze(chain, chain_placement, 2000.0)
    tight = GraphSTA().analyze(chain, chain_placement, 100.0)
    assert tight.wns < loose.wns
    assert tight.slack_of("ff0/D") < loose.slack_of("ff0/D")


def test_wns_is_minimum_endpoint_slack(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, 1200.0)
    assert report.wns == min(e.slack for e in report.endpoints.values())
    assert report.tns <= 0.0


def test_arrival_accumulates_along_chain(chain, chain_placement):
    report = GraphSTA().analyze(chain, chain_placement, 1000.0)
    ep = report.endpoints["ff0/D"]
    assert ep.path_depth == 2
    assert ep.arrival > 0


def test_corner_scaling(chain, chain_placement):
    tt = GraphSTA(TYPICAL).analyze(chain, chain_placement, 1000.0)
    ss = GraphSTA(SLOW).analyze(chain, chain_placement, 1000.0)
    ff = GraphSTA(FAST).analyze(chain, chain_placement, 1000.0)
    assert ss.endpoints["ff0/D"].arrival > tt.endpoints["ff0/D"].arrival
    assert ff.endpoints["ff0/D"].arrival < tt.endpoints["ff0/D"].arrival


def test_corner_validation():
    with pytest.raises(ValueError):
        Corner("bad", delay_factor=0.0)


def test_skew_shifts_required_time(chain, chain_placement):
    base = GraphSTA().analyze(chain, chain_placement, 1000.0)
    skewed = GraphSTA().analyze(chain, chain_placement, 1000.0, skews={"ff0": 50.0})
    assert skewed.slack_of("ff0/D") > base.slack_of("ff0/D")


def test_signoff_more_pessimistic_than_graph(small_netlist, small_placement, small_congestion):
    graph = GraphSTA().analyze(small_netlist, small_placement, 1200.0)
    signoff = SignoffSTA(pba=False).analyze(
        small_netlist, small_placement, 1200.0, congestion=small_congestion
    )
    # derates + SI make the signoff GBA arrival strictly later on real paths
    for name, ep in signoff.endpoints.items():
        if ep.path_depth > 0:
            assert ep.arrival > graph.endpoints[name].arrival


def test_pba_recovers_gba_pessimism(small_netlist, small_placement, small_congestion):
    gba = SignoffSTA(pba=False).analyze(
        small_netlist, small_placement, 1200.0, congestion=small_congestion
    )
    pba = SignoffSTA(pba=True).analyze(
        small_netlist, small_placement, 1200.0, congestion=small_congestion
    )
    assert pba.wns >= gba.wns
    assert pba.runtime_proxy > gba.runtime_proxy


def test_si_bump_grows_with_congestion(small_netlist, small_placement):
    calm = SignoffSTA(pba=False).analyze(
        small_netlist, small_placement, 1200.0, congestion=np.zeros((16, 16))
    )
    stormy = SignoffSTA(pba=False).analyze(
        small_netlist, small_placement, 1200.0, congestion=np.full((16, 16), 2.0)
    )
    assert stormy.wns < calm.wns


def test_signoff_costs_more_runtime(small_netlist, small_placement):
    graph = GraphSTA().analyze(small_netlist, small_placement, 1200.0)
    signoff = SignoffSTA().analyze(small_netlist, small_placement, 1200.0)
    assert signoff.runtime_proxy > graph.runtime_proxy


def test_endpoint_features_well_formed(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, 1200.0)
    for ep in report.endpoints.values():
        feats = ep.features
        assert len(feats) == len(ep.FEATURE_NAMES)
        assert all(np.isfinite(f) for f in feats)
        assert ep.path_depth >= 0


def test_paths_recorded_for_endpoints(small_netlist, small_placement):
    report = GraphSTA().analyze(small_netlist, small_placement, 1200.0)
    assert set(report.paths) == set(report.endpoints)
    for name, path in report.paths.items():
        assert report.endpoints[name].path_depth == len(path)


def test_invalid_period_rejected(small_netlist, small_placement):
    with pytest.raises(ValueError):
        GraphSTA().analyze(small_netlist, small_placement, 0.0)


def test_signoff_parameter_validation():
    with pytest.raises(ValueError):
        SignoffSTA(si_factor=-1.0)
    with pytest.raises(ValueError):
        SignoffSTA(ocv_derate=0.9)
