"""Frozen copies of the landscape-search annealing kernels (the golden
reference for the façade equivalence tests).

These are the literal ``_anneal_steps`` / ``_rebalance`` /
``_consensus_start`` kernels as they stood in the pre-``repro.dse``
modules (``repro.core.search.gwtw`` and ``repro.core.search.multistart``),
kept verbatim — same rng draw order, same float expressions — so the
equivalence suite compares the refactored strategy plugins against the
historical behavior rather than against the code under test.  Not a
test module — no ``test_`` prefix, so pytest does not collect it.

The bit-identity guarantee of the ``go_with_the_winners`` /
``AdaptiveMultistart`` façades rests on these kernels consuming the
shared rng stream in exactly the historical order; any edit to the live
copies in :mod:`repro.dse.strategies.landscape` breaks that guarantee
unless this reference is deliberately re-frozen (lint rule R011).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.search.landscape import BisectionProblem


@dataclass
class _Thread:
    assign: np.ndarray
    cost: float
    temperature: float


def _anneal_steps(
    problem: BisectionProblem,
    thread: _Thread,
    n_steps: int,
    rng: np.random.Generator,
    cooling: float,
) -> None:
    """Metropolis single-flip annealing, in place."""
    for _ in range(n_steps):
        node = int(rng.integers(0, problem.n_nodes))
        trial = thread.assign.copy()
        trial[node] = ~trial[node]
        if not problem.is_balanced(trial):
            continue
        delta = -problem.gain(thread.assign, node)  # cost change
        if delta <= 0 or rng.random() < np.exp(-delta / max(1e-9, thread.temperature)):
            thread.assign = trial
            thread.cost += delta
        thread.temperature *= cooling


def _rebalance(
    problem: BisectionProblem, assign: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Flip random nodes of the larger side until balanced."""
    assign = assign.copy()
    half = problem.n_nodes // 2
    while not problem.is_balanced(assign):
        ones = int(np.sum(assign))
        side = ones > half
        candidates = np.nonzero(assign == side)[0]
        assign[rng.choice(candidates)] = not side
    return assign


def _consensus_start(
    problem: BisectionProblem,
    elite: List[np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Agreeing nodes keep their side; contested nodes randomize."""
    # align all elite to the first (bisection has label symmetry)
    reference = elite[0]
    aligned = [reference]
    for sol in elite[1:]:
        flipped = ~sol
        if np.sum(sol != reference) <= np.sum(flipped != reference):
            aligned.append(sol)
        else:
            aligned.append(flipped)
    votes = np.mean(np.stack(aligned), axis=0)
    start = np.where(
        votes > 0.5 + 1e-9,
        True,
        np.where(votes < 0.5 - 1e-9, False, rng.random(problem.n_nodes) < 0.5),
    )
    return _rebalance(problem, start.astype(bool), rng)


#: live scalar kernels frozen by this module, checked by lint rule R011
#: ("<root-relative live path>::<qualname>" -> reference qualname); a
#: drifted pair is a lint error until the reference is re-frozen
FROZEN_PAIRS = {
    "src/repro/dse/strategies/landscape.py::_anneal_steps":
        "_anneal_steps",
    "src/repro/dse/strategies/landscape.py::_rebalance":
        "_rebalance",
    "src/repro/dse/strategies/landscape.py::_consensus_start":
        "_consensus_start",
}
