"""Frozen copy of the post-bugfix scalar placement kernels (the golden
reference for the vectorized placement equivalence tests).

This is the literal scalar implementation the struct-of-arrays fast
paths replaced — per-site legality checks in the legalizer, per-move
full rescans of every touched net in the annealer — captured *after*
the three PR-7 bugfixes landed (shared ``bin_index`` binning, cooling
decay moved after the acceptance test, ``pad is not None`` presence
checks), so the equivalence suite compares both in-tree kernels against
the frozen historical behavior rather than against the code under test.
Not a test module — no ``test_`` prefix, so pytest does not collect it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eda.floorplan import Floorplan, ROW_HEIGHT
from repro.eda.netlist import Netlist
from repro.eda.placement import Placement

_CLIQUE_CAP = 8  # clique model samples at most this many pins per net


class ReferenceQuadraticPlacer:
    """The historical analytic placer with the scalar legalizer."""

    def __init__(self, spread_strength: float = 0.8):
        if not 0.0 <= spread_strength <= 1.0:
            raise ValueError("spread_strength must be in [0, 1]")
        self.spread_strength = spread_strength

    def place(
        self, netlist: Netlist, floorplan: Floorplan, seed: Optional[int] = None
    ) -> Placement:
        rng = np.random.default_rng(seed)
        names = list(netlist.instances)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        if n == 0:
            return Placement(netlist, floorplan, {})

        lap = np.zeros((n, n))
        bx = np.zeros(n)
        by = np.zeros(n)
        anchor = 1e-6  # regularize unconnected components
        lap[np.diag_indices(n)] += anchor
        cx, cy = floorplan.width / 2, floorplan.height / 2
        bx += anchor * cx
        by += anchor * cy

        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            members = []
            if net.driver is not None:
                members.append(index[net.driver])
            members += [index[s] for s, _ in net.sinks]
            members = list(dict.fromkeys(members))
            pad = floorplan.pad_positions.get(net_name)
            k = len(members) + (1 if pad is not None else 0)
            if k < 2:
                continue
            w = 1.0 / (k - 1)
            if len(members) > _CLIQUE_CAP:
                members = [members[int(i)] for i in rng.choice(len(members), _CLIQUE_CAP, replace=False)]
            for a_pos, a in enumerate(members):
                for b in members[a_pos + 1 :]:
                    lap[a, a] += w
                    lap[b, b] += w
                    lap[a, b] -= w
                    lap[b, a] -= w
                if pad is not None:
                    lap[a, a] += w
                    bx[a] += w * pad[0]
                    by[a] += w * pad[1]

        xs = np.linalg.solve(lap, bx)
        ys = np.linalg.solve(lap, by)
        xs, ys = self._spread(xs, ys, floorplan)
        positions = {name: (float(xs[i]), float(ys[i])) for name, i in index.items()}
        placement = Placement(netlist, floorplan, positions)
        reference_legalize(placement, rng)
        return placement

    def _spread(self, xs: np.ndarray, ys: np.ndarray, fp: Floorplan):
        """Blend analytic coordinates with rank-uniform coordinates."""
        n = xs.shape[0]
        alpha = self.spread_strength
        rank_x = np.empty(n)
        rank_x[np.argsort(xs, kind="stable")] = (np.arange(n) + 0.5) / n * fp.width
        rank_y = np.empty(n)
        rank_y[np.argsort(ys, kind="stable")] = (np.arange(n) + 0.5) / n * fp.height
        xs = (1 - alpha) * xs + alpha * rank_x
        ys = (1 - alpha) * ys + alpha * rank_y
        return np.clip(xs, 0, fp.width), np.clip(ys, 0, fp.height)


def reference_legalize(placement: Placement, rng: np.random.Generator) -> None:
    """Snap cells to row/site grid, one cell per site, avoiding macros."""
    fp = placement.floorplan
    names = list(placement.positions)
    n = len(names)
    n_rows = fp.n_rows
    sites_per_row = max(1, int(np.ceil(n / n_rows * 1.25)))
    pitch = fp.width / sites_per_row

    free_sites = []
    for r in range(n_rows):
        y = (r + 0.5) * ROW_HEIGHT
        for c in range(sites_per_row):
            x = (c + 0.5) * pitch
            if not fp.in_macro(x, y):
                free_sites.append((x, y))
    if len(free_sites) < n:
        raise ValueError("floorplan has fewer legal sites than cells")

    # greedy nearest-site assignment in random order (seed-dependent)
    order = list(rng.permutation(n))
    site_arr = np.array(free_sites)
    taken = np.zeros(len(free_sites), dtype=bool)
    for idx in order:
        name = names[idx]
        x, y = placement.positions[name]
        d2 = (site_arr[:, 0] - x) ** 2 + (site_arr[:, 1] - y) ** 2
        d2[taken] = np.inf
        best = int(np.argmin(d2))
        taken[best] = True
        placement.positions[name] = (float(site_arr[best, 0]), float(site_arr[best, 1]))


class ReferenceAnnealingRefiner:
    """The post-bugfix scalar annealer, verbatim.

    Every move fully rescans every pin of every touched net; the
    cooling decay fires after the acceptance test of an evaluated move
    (``a == b`` skips neither evaluate nor decay).  After ``refine``,
    ``last_first_temperature`` / ``last_last_temperature`` /
    ``last_n_evaluated`` record the evaluated schedule.
    """

    def __init__(
        self,
        moves_per_cell: int = 30,
        t_start: float = 4.0,
        t_end: float = 0.05,
    ):
        if moves_per_cell < 1:
            raise ValueError("moves_per_cell must be >= 1")
        self.moves_per_cell = moves_per_cell
        self.t_start = t_start
        self.t_end = t_end
        self.last_first_temperature: Optional[float] = None
        self.last_last_temperature: Optional[float] = None
        self.last_n_evaluated: int = 0

    def refine(
        self,
        placement: Placement,
        seed: Optional[int] = None,
        net_weights: Optional[Dict[str, float]] = None,
    ) -> float:
        rng = np.random.default_rng(seed)
        netlist = placement.netlist
        names = list(netlist.instances)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)
        self.last_first_temperature = None
        self.last_last_temperature = None
        self.last_n_evaluated = 0
        if n < 2:
            return placement.hpwl()

        pos_x = [placement.positions[nm][0] for nm in names]
        pos_y = [placement.positions[nm][1] for nm in names]
        nets_members: List[List[int]] = []
        nets_fixed: List[Optional[Tuple[float, float]]] = []
        nets_weight: List[float] = []
        inst_nets: List[List[int]] = [[] for _ in range(n)]
        for net_name, net in netlist.nets.items():
            if net_name == netlist.clock_net:
                continue
            members = []
            if net.driver is not None:
                members.append(index[net.driver])
            members += [index[s] for s, _ in net.sinks]
            members = list(dict.fromkeys(members))
            pad = placement.floorplan.pad_positions.get(net_name)
            if len(members) + (1 if pad is not None else 0) < 2:
                continue
            net_id = len(nets_members)
            nets_members.append(members)
            nets_fixed.append(pad)
            weight = 1.0 if net_weights is None else float(net_weights.get(net_name, 1.0))
            if weight <= 0:
                raise ValueError(f"net weight for {net_name} must be positive")
            nets_weight.append(weight)
            for m in members:
                inst_nets[m].append(net_id)

        def net_hpwl(net_id: int) -> float:
            members = nets_members[net_id]
            pad = nets_fixed[net_id]
            if pad is not None:
                x_lo = x_hi = pad[0]
                y_lo = y_hi = pad[1]
            else:
                first = members[0]
                x_lo = x_hi = pos_x[first]
                y_lo = y_hi = pos_y[first]
            for m in members:
                x = pos_x[m]
                y = pos_y[m]
                if x < x_lo:
                    x_lo = x
                elif x > x_hi:
                    x_hi = x
                if y < y_lo:
                    y_lo = y
                elif y > y_hi:
                    y_hi = y
            return ((x_hi - x_lo) + (y_hi - y_lo)) * nets_weight[net_id]

        n_moves = self.moves_per_cell * n
        cool = (self.t_end / self.t_start) ** (1.0 / max(1, n_moves - 1))
        t = self.t_start
        pairs = rng.integers(0, n, size=(n_moves, 2))
        uniforms = rng.random(n_moves)
        exp = math.exp
        for move in range(n_moves):
            a, b = int(pairs[move, 0]), int(pairs[move, 1])
            if a == b:
                continue
            seen = set(inst_nets[a])
            touched = inst_nets[a] + [nid for nid in inst_nets[b] if nid not in seen]
            before = 0.0
            for net_id in touched:
                before += net_hpwl(net_id)
            pos_x[a], pos_x[b] = pos_x[b], pos_x[a]
            pos_y[a], pos_y[b] = pos_y[b], pos_y[a]
            after = 0.0
            for net_id in touched:
                after += net_hpwl(net_id)
            delta = after - before
            if delta > 0 and uniforms[move] >= exp(-delta / t):
                pos_x[a], pos_x[b] = pos_x[b], pos_x[a]  # reject
                pos_y[a], pos_y[b] = pos_y[b], pos_y[a]
            if self.last_first_temperature is None:
                self.last_first_temperature = t
            self.last_last_temperature = t
            self.last_n_evaluated += 1
            t *= cool

        for i, nm in enumerate(names):
            placement.positions[nm] = (pos_x[i], pos_y[i])
        return placement.hpwl()


#: live scalar kernels frozen by this module, checked by lint rule R011
#: ("<root-relative live path>::<qualname>" -> reference qualname); a
#: drifted pair is a lint error until the reference is re-frozen
FROZEN_PAIRS = {
    "src/repro/eda/placement.py::QuadraticPlacer._spread":
        "ReferenceQuadraticPlacer._spread",
    "src/repro/eda/placement.py::AnnealingRefiner._anneal_scalar.net_hpwl":
        "ReferenceAnnealingRefiner.refine.net_hpwl",
}
