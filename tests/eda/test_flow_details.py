"""Flow internals: implement() path, logs, runtime accounting, options."""

import numpy as np
import pytest

from repro.core.orchestration import default_option_tree
from repro.eda.flow import FlowOptions, SPRFlow, StepLog
from repro.eda.synthesis import synthesize


def test_implement_skips_synthesis(library, small_netlist, small_spec):
    """implement() takes a prebuilt netlist; no synth step in the log."""
    import copy

    netlist = synthesize(small_spec, library, effort=0.5, seed=7)
    result = SPRFlow().implement(netlist, FlowOptions(target_clock_ghz=0.5), seed=1)
    steps = [log.step for log in result.logs]
    assert steps[0] == "floorplan"
    assert "synth" not in steps
    assert result.design == netlist.name


def test_run_equals_synthesize_plus_implement(library, small_spec):
    """run() must be exactly synthesize + implement with split seeds."""
    full = SPRFlow().run(small_spec, FlowOptions(), seed=5)
    rng = np.random.default_rng(5)
    synth_seed = int(rng.integers(0, 2**31 - 1))
    impl_seed = int(rng.integers(0, 2**31 - 1))
    netlist = synthesize(small_spec, library, 0.5, synth_seed)
    manual = SPRFlow().implement(netlist, FlowOptions(), seed=impl_seed,
                                 design_name=small_spec.name)
    assert manual.area == pytest.approx(full.area)
    assert manual.wns == pytest.approx(full.wns)
    assert manual.final_drvs == full.final_drvs


def test_runtime_proxy_is_sum_of_steps(small_spec):
    result = SPRFlow().run(small_spec, FlowOptions(), seed=2)
    assert result.runtime_proxy == pytest.approx(
        sum(log.runtime_proxy for log in result.logs)
    )
    assert all(log.runtime_proxy >= 0 for log in result.logs)


def test_step_log_text_format():
    log = StepLog("demo", {"value": 1.5}, series={"trace": [1.0, 2.0]},
                  runtime_proxy=3.0)
    text = log.to_text()
    assert "#--- step demo (cost 3) ---" in text
    assert "demo.value = 1.5000" in text
    assert "demo.trace[0] = 1.0000" in text
    assert "demo.trace[1] = 2.0000" in text


def test_higher_router_effort_helps_drvs(small_spec):
    lazy = SPRFlow().run(
        small_spec, FlowOptions(utilization=0.9, router_effort=0.2,
                                router_tracks_per_um=11.0), seed=3
    )
    eager = SPRFlow().run(
        small_spec, FlowOptions(utilization=0.9, router_effort=1.0,
                                router_tracks_per_um=11.0), seed=3
    )
    assert eager.final_drvs <= lazy.final_drvs


def test_more_router_iterations_help(small_spec):
    short = SPRFlow().run(
        small_spec, FlowOptions(utilization=0.9, router_max_iterations=5,
                                router_tracks_per_um=11.0), seed=4
    )
    long = SPRFlow().run(
        small_spec, FlowOptions(utilization=0.9, router_max_iterations=40,
                                router_tracks_per_um=11.0), seed=4
    )
    assert long.final_drvs <= short.final_drvs


def test_synth_effort_changes_structure(small_spec):
    low = SPRFlow().run(small_spec, FlowOptions(synth_effort=0.0), seed=5)
    high = SPRFlow().run(small_spec, FlowOptions(synth_effort=1.0), seed=5)
    low_depth = next(l for l in low.logs if l.step == "synth").metrics["depth"]
    high_depth = next(l for l in high.logs if l.step == "synth").metrics["depth"]
    assert high_depth < low_depth


def test_iteration_aware_tree_is_larger():
    tree = default_option_tree()
    flat = tree.n_trajectories
    looped = tree.n_trajectories_with_iteration(p_repeat=0.3, max_repeats=2)
    assert looped > flat
    no_loops = tree.n_trajectories_with_iteration(p_repeat=0.0)
    assert no_loops == pytest.approx(flat)
    with pytest.raises(ValueError):
        tree.n_trajectories_with_iteration(p_repeat=1.0)
    with pytest.raises(ValueError):
        tree.n_trajectories_with_iteration(max_repeats=-1)
