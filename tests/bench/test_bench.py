"""Workload generators: profiles, corpora, eyecharts."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    DRIVER_CLASSES,
    RouterLogCorpus,
    artificial_profile,
    design_profile,
    embedded_cpu_profile,
    make_eyechart,
    pulpino_profile,
)
from repro.eda.library import make_default_library
from repro.eda.synthesis import synthesize


# ---------------------------------------------------------------- profiles
def test_driver_classes_cover_paper_list():
    assert {"CPU", "GPU", "DSP", "NOC", "PHY"} <= set(DRIVER_CLASSES)


def test_profiles_synthesize(library):
    for name, spec in DRIVER_CLASSES.items():
        nl = synthesize(spec, library, effort=0.3, seed=1)
        nl.validate()
        assert nl.n_instances > spec.n_gates * 0.8


def test_design_profile_lookup():
    assert design_profile("CPU").name == "embedded_cpu"
    assert design_profile("pulpino").name == "pulpino"
    with pytest.raises(KeyError):
        design_profile("quantum")


def test_pulpino_scaling():
    small = pulpino_profile(scale=0.5)
    big = pulpino_profile(scale=2.0)
    assert big.n_gates == 4 * small.n_gates
    with pytest.raises(ValueError):
        pulpino_profile(scale=0.0)


def test_artificial_profiles_vary():
    specs = [artificial_profile(i) for i in range(6)]
    assert len({(s.n_gates, s.n_flops, s.depth) for s in specs}) > 1
    assert all(s.name.startswith("artificial") for s in specs)
    with pytest.raises(ValueError):
        artificial_profile(-1)


def test_cpu_profile_bigger_than_pulpino():
    assert embedded_cpu_profile().n_gates > pulpino_profile().n_gates


# ------------------------------------------------------------------ corpus
@pytest.fixture(scope="module")
def small_corpora():
    return (
        RouterLogCorpus.artificial(n=80, seed=1),
        RouterLogCorpus.cpu_floorplans(n=60, seed=2, n_base_maps=2),
    )


def test_corpus_sizes(small_corpora):
    train, test = small_corpora
    assert len(train) == 80
    assert len(test) == 60


def test_corpus_has_both_outcomes(small_corpora):
    for corpus in small_corpora:
        assert 0.1 < corpus.success_rate < 0.95


def test_corpus_logs_well_formed(small_corpora):
    for corpus in small_corpora:
        for log in corpus:
            assert log.n_iterations >= 1
            assert all(v >= 0 for v in log.drvs)
            assert log.final_drvs == log.drvs[-1]
            # ground truth consistent with the 200-DRV success rule
            assert log.success == (log.final_drvs < 200)


def test_corpus_difficulty_drives_outcome(small_corpora):
    """Harder (more congested) runs fail more often."""
    train, _ = small_corpora
    failed = [log.difficulty for log in train if not log.success]
    passed = [log.difficulty for log in train if log.success]
    assert np.mean(failed) > np.mean(passed)


def test_corpus_domains_differ(small_corpora):
    train, test = small_corpora
    assert train.domain == "artificial"
    assert test.domain == "cpu"


def test_corpus_reproducible():
    a = RouterLogCorpus.artificial(n=20, seed=9)
    b = RouterLogCorpus.artificial(n=20, seed=9)
    assert [log.drvs for log in a] == [log.drvs for log in b]


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        RouterLogCorpus([], "x")


# --------------------------------------------------------------- eyecharts
def test_eyechart_dp_matches_brute_force(library):
    chart = make_eyechart(n_stages=4, seed=5, library=library)
    drives = [d for d in itertools.product([1, 2, 4, 8], repeat=4) if d[0] == 1]
    best = min(drives, key=lambda d: chart.delay_of(d, library))
    assert chart.optimal_drives == best
    assert chart.optimal_delay == pytest.approx(chart.delay_of(best, library))


def test_eyechart_optimum_beats_naive(library):
    chart = make_eyechart(n_stages=8, seed=6, library=library)
    naive = tuple([1] * 8)
    assert chart.quality_of(naive, library) > 1.0
    assert chart.quality_of(chart.optimal_drives, library) == pytest.approx(1.0)


def test_eyechart_netlist_valid(library):
    chart = make_eyechart(n_stages=6, seed=7, library=library)
    chart.netlist.validate()
    assert chart.netlist.n_instances == 6
    # the netlist instantiates the optimal sizing
    for i, drive in enumerate(chart.optimal_drives):
        assert chart.netlist.instances[f"s{i}"].cell.drive == drive


def test_eyechart_first_stage_pinned(library):
    chart = make_eyechart(n_stages=5, seed=8, library=library)
    assert chart.optimal_drives[0] == 1


def test_eyechart_validation():
    with pytest.raises(ValueError):
        make_eyechart(n_stages=1)
    with pytest.raises(ValueError):
        make_eyechart(output_load=0.0)
    chart = make_eyechart(n_stages=3, seed=0)
    with pytest.raises(ValueError):
        chart.delay_of((1, 2), chart.netlist.library)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_eyechart_optimum_is_minimal(seed):
    """No single-stage resize improves on the DP optimum."""
    library = make_default_library()
    chart = make_eyechart(n_stages=5, seed=seed, library=library)
    base = chart.optimal_delay
    for i in range(1, 5):  # stage 0 is pinned
        for drive in (1, 2, 4, 8):
            trial = list(chart.optimal_drives)
            trial[i] = drive
            assert chart.delay_of(tuple(trial), library) >= base - 1e-9
