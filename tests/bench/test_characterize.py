"""Eyechart-based sizer characterization."""

import pytest

from repro.bench.characterize import (
    BUILTIN_SIZERS,
    CharacterizationReport,
    characterize,
    greedy_sizer,
    naive_sizer,
)


@pytest.fixture(scope="module")
def reports():
    return {r.sizer: r for r in characterize(n_charts=12, seed=5)}


def test_all_builtin_sizers_graded(reports):
    assert set(reports) == set(BUILTIN_SIZERS)
    for report in reports.values():
        assert len(report.qualities) == 12
        assert all(q >= 1.0 - 1e-9 for q in report.qualities)  # never beat the optimum


def test_optimal_reference_is_exact(reports):
    assert reports["optimal"].mean_quality == pytest.approx(1.0)
    assert reports["optimal"].optimal_rate == 1.0


def test_quality_ordering(reports):
    """Greedy < random-20 < naive-X1: the benchmark discriminates."""
    assert reports["greedy"].mean_quality < reports["random20"].mean_quality
    assert reports["random20"].mean_quality < reports["naive_x1"].mean_quality


def test_greedy_is_near_optimal_but_not_exact(reports):
    greedy = reports["greedy"]
    assert greedy.mean_quality < 1.05  # close to optimal on chains
    # ... but eyecharts exist because heuristics are not optimal
    assert greedy.optimal_rate < 1.0 or greedy.worst_quality > 1.0


def test_greedy_sizer_keeps_first_stage_pinned(library):
    from repro.bench.eyecharts import make_eyechart
    import numpy as np

    chart = make_eyechart(n_stages=6, seed=1, library=library)
    drives = greedy_sizer(chart, library, np.random.default_rng(0))
    assert drives[0] == 1
    assert len(drives) == 6


def test_characterize_validation():
    with pytest.raises(ValueError):
        characterize(n_charts=0)


def test_report_statistics():
    report = CharacterizationReport("x", [1.0, 1.5, 2.0])
    assert report.mean_quality == pytest.approx(1.5)
    assert report.worst_quality == 2.0
    assert report.optimal_rate == pytest.approx(1 / 3)
