"""VT-assignment eyecharts with known optimal leakage."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import greedy_vt_assignment, make_vt_eyechart


@pytest.fixture(scope="module")
def chart():
    return make_vt_eyechart(n_stages=8, seed=1)


def test_optimum_is_feasible(chart):
    assert chart.is_feasible(chart.optimal_vts)
    assert chart.leakage_of(chart.optimal_vts) == pytest.approx(chart.optimal_leakage)


def test_optimum_matches_exhaustive_small():
    chart = make_vt_eyechart(n_stages=5, seed=2)
    best = min(
        (c for c in itertools.product(("LVT", "SVT", "HVT"), repeat=5)
         if chart.is_feasible(c)),
        key=chart.leakage_of,
    )
    assert chart.leakage_of(best) == pytest.approx(chart.optimal_leakage)


def test_all_lvt_feasible_but_leaky(chart):
    all_lvt = tuple(["LVT"] * chart.n_stages)
    assert chart.is_feasible(all_lvt)
    assert chart.quality_of(all_lvt) > 1.5


def test_all_hvt_infeasible(chart):
    """The budget is tight enough that full relaxation breaks timing."""
    all_hvt = tuple(["HVT"] * chart.n_stages)
    assert not chart.is_feasible(all_hvt)
    assert chart.quality_of(all_hvt) == float("inf")


def test_greedy_assignment_feasible_and_good(chart):
    greedy = greedy_vt_assignment(chart)
    assert chart.is_feasible(greedy)
    quality = chart.quality_of(greedy)
    assert 1.0 <= quality < 1.3  # near-optimal but characterizably imperfect


def test_validation(chart):
    with pytest.raises(ValueError):
        make_vt_eyechart(n_stages=1)
    with pytest.raises(ValueError):
        make_vt_eyechart(n_stages=20)
    with pytest.raises(ValueError):
        make_vt_eyechart(slack_fraction=0.0)
    with pytest.raises(ValueError):
        chart.delay_of(("LVT",))
    with pytest.raises(ValueError):
        chart.delay_of(tuple(["XVT"] * chart.n_stages))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_greedy_never_beats_optimum(seed):
    chart = make_vt_eyechart(n_stages=6, seed=seed)
    greedy = greedy_vt_assignment(chart)
    assert chart.leakage_of(greedy) >= chart.optimal_leakage - 1e-12
    assert chart.is_feasible(greedy)
