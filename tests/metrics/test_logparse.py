"""Wrapper-script logfile parsing."""

import pytest

from repro.eda.flow import FlowOptions, SPRFlow
from repro.metrics import MetricsServer
from repro.metrics.logparse import (
    FlowLogParseError,
    drv_trajectory_from_log,
    parse_flow_log,
    transmit_flow_log,
)
from repro.metrics.wrappers import InstrumentedFlow


@pytest.fixture(scope="module")
def flow_log(small_spec):
    result = SPRFlow().run(small_spec, FlowOptions(target_clock_ghz=0.6), seed=9)
    return result, result.log_text()


def test_parse_header_and_metrics(flow_log):
    result, text = flow_log
    header, metrics, series = parse_flow_log(text)
    assert header["design"] == result.design
    assert float(header["target_ghz"]) == pytest.approx(0.6)
    assert metrics["signoff.wns"] == pytest.approx(result.wns, abs=0.01)
    assert metrics["droute.final_drvs"] == result.final_drvs


def test_parse_series(flow_log):
    result, text = flow_log
    _, _, series = parse_flow_log(text)
    drvs = series["droute.drvs"]
    droute_log = next(l for l in result.logs if l.step == "droute")
    assert drvs == droute_log.series["drvs"]


def test_drv_trajectory_matches_history(flow_log):
    result, text = flow_log
    trajectory = drv_trajectory_from_log(text)
    assert trajectory is not None
    assert trajectory[-1] == result.final_drvs
    assert all(isinstance(v, int) for v in trajectory)


def test_parse_rejects_garbage():
    with pytest.raises(FlowLogParseError):
        parse_flow_log("this is not a flow log")
    with pytest.raises(FlowLogParseError):
        parse_flow_log("# SP&R flow log: design=x seed=1 target=0.500GHz\n")


def test_wrapper_path_matches_api_path(small_spec, flow_log):
    """The text-log wrapper and the API instrumentation must agree on
    every vocabulary metric they both report."""
    result, text = flow_log
    api_server = MetricsServer()
    InstrumentedFlow(api_server).report(result, "api-run")
    api_vec = api_server.run_vector("api-run")

    log_server = MetricsServer()
    n = transmit_flow_log(text, log_server, "log-run")
    assert n > 10
    log_vec = log_server.run_vector("log-run")

    for key in set(api_vec) & set(log_vec):
        assert api_vec[key] == pytest.approx(log_vec[key], abs=0.01), key


def test_wrapper_tolerates_extra_lines(flow_log):
    _, text = flow_log
    noisy = "random tool banner\n" + text + "\nWARNING: something\n"
    server = MetricsServer()
    assert transmit_flow_log(noisy, server, "noisy-run") > 0


def test_doomed_predictor_trains_from_text_logs(small_spec):
    """End to end: archive text logs, recover DRV series, train."""
    from repro.bench.corpus import RouterLog
    from repro.core.doomed import MDPCardLearner

    flow = SPRFlow()
    logs = []
    for seed in range(6):
        options = FlowOptions(utilization=0.9 if seed % 2 else 0.6,
                              router_tracks_per_um=9.0 if seed % 2 else 18.0)
        result = flow.run(small_spec, options, seed=seed)
        drvs = drv_trajectory_from_log(result.log_text())
        logs.append(RouterLog(drvs=drvs, success=result.routed,
                              domain="archive", difficulty=0.0))
    if len({log.success for log in logs}) == 2:
        card = MDPCardLearner().fit(logs)
        assert card.counts()["visited"] > 0
