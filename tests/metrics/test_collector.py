"""Cross-process METRICS collection: run ids, QueueTransmitter,
MetricsCollector, and the instrumented FlowExecutor path."""

import numpy as np
import pytest

from repro.core.parallel import FlowExecutionError, FlowExecutor, FlowJob
from repro.eda.flow import FlowOptions
from repro.metrics import (
    DataMiner,
    MetricsCollector,
    MetricsServer,
    QueueTransmitter,
    make_run_id,
)
from repro.metrics.schema import EXECUTOR_EVENT_METRICS

OPTS = FlowOptions(target_clock_ghz=0.6)


def campaign_jobs(spec, n=8, seed=7):
    """n distinct flow points with enough option spread for the miner."""
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        options = OPTS.with_(
            target_clock_ghz=float(rng.uniform(0.5, 0.9)),
            utilization=float(rng.uniform(0.55, 0.85)),
            synth_effort=float(rng.uniform(0.2, 0.9)),
            opt_guardband=float(rng.uniform(0.0, 50.0)),
        )
        jobs.append(FlowJob(spec, options, i))
    return jobs


# ------------------------------------------------------------------ run ids
def test_run_id_content_derived(small_spec):
    base = make_run_id(small_spec, OPTS, 1)
    assert base.startswith("tiny-")
    assert make_run_id(small_spec, OPTS, 1) == base  # same point, same id
    assert make_run_id(small_spec, OPTS, 2) != base
    assert make_run_id(small_spec, OPTS.with_(utilization=0.6), 1) != base
    assert make_run_id("tiny", OPTS, 1) != ""  # plain-name form works too


def test_run_ids_unique_across_campaign(small_spec):
    jobs = campaign_jobs(small_spec, n=12)
    ids = {make_run_id(j.design, j.options, j.seed) for j in jobs}
    assert len(ids) == 12


# ---------------------------------------------------------------- collector
def test_collector_requires_start():
    collector = MetricsCollector(cross_process=False)
    with pytest.raises(RuntimeError):
        collector.queue
    collector.stop()  # stopping an unstarted collector is a no-op


def test_queue_transmitter_validates_and_delivers():
    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        tx = QueueTransmitter(collector.queue, "d", "r1", "tool")
        with pytest.raises(ValueError):
            tx.send("garbage.name", 1.0)  # vocabulary check is inherited
        tx.send("flow.area", 10.0)
        tx.flush()
        collector.flush()
        assert len(server) == 1
    assert server.run_vector("r1") == {"flow.area": 10.0}
    assert collector.received == 1 and collector.dropped == 0


def test_collector_drops_malformed_items_without_dying():
    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        collector.queue.put("<not-a-metric/>")
        with QueueTransmitter(collector.queue, "d", "r1", "tool") as tx:
            tx.send("flow.area", 1.0)
        collector.flush()
    assert collector.dropped == 1
    assert len(server) == 1


# ----------------------------------------------- instrumented executor runs
def test_serial_executor_reports_into_server(small_spec):
    server = MetricsServer()
    jobs = campaign_jobs(small_spec, n=3)
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, collector=collector) as executor:
            results = executor.run_jobs(jobs)
        collector.flush()
    assert len(server.runs()) == 3
    for job, result in zip(jobs, results):
        vec = server.run_vector(make_run_id(job.design, job.options, job.seed))
        assert vec["flow.area"] == pytest.approx(result.area)
        assert vec["signoff.wns"] == pytest.approx(result.wns)
        assert vec["option.utilization"] == pytest.approx(job.options.utilization)
        for event in EXECUTOR_EVENT_METRICS:
            assert event in vec
        assert vec["exec.attempts"] == 1.0
        assert vec["exec.failure"] == 0.0


def test_cache_hits_and_dedup_are_reported(small_spec):
    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, collector=collector) as executor:
            executor.run_jobs([FlowJob(small_spec, OPTS, 1)] * 2)  # run + dedup
            executor.run_jobs([FlowJob(small_spec, OPTS, 1)])      # memory hit
        collector.flush()
    run_id = make_run_id(small_spec, OPTS, 1)
    vec = server.run_vector(run_id)
    # last batch served from memory; flow metrics were re-reported for it
    assert vec["exec.cache_hit_memory"] == 1.0
    assert "flow.area" in vec
    dedup_records = server.query(metric="exec.dedup", run_id=run_id)
    assert any(r.value == 1.0 for r in dedup_records)


def test_failed_job_emits_failure_event(small_spec):
    from tests.core.test_parallel import _crash_always

    server = MetricsServer()
    with MetricsCollector(server, cross_process=False) as collector:
        executor = FlowExecutor(n_workers=1, flow_fn=_crash_always,
                                max_retries=1, collector=collector)
        outcome = executor.run_one(small_spec, OPTS, 5)
        collector.flush()
    assert isinstance(outcome, FlowExecutionError)
    vec = server.run_vector(make_run_id(small_spec, OPTS, 5))
    assert vec["exec.failure"] == 1.0
    assert vec["exec.attempts"] == 2.0
    assert vec["exec.retries"] == 1.0
    assert "flow.area" not in vec  # no result, no step metrics


def test_pool_requires_cross_process_collector(small_spec):
    collector = MetricsCollector(cross_process=False).start()
    executor = FlowExecutor(n_workers=2, collector=collector)
    try:
        with pytest.raises(ValueError):
            executor.run_jobs([FlowJob(small_spec, OPTS, 1)])
    finally:
        executor.close()
        collector.stop()


# ------------------------------------------------------------- end to end
def test_collector_end_to_end_two_workers(small_spec):
    """Acceptance: an n_workers=2 campaign lands every job's step metrics
    plus executor events in one server, under unique run ids, with
    bit-identical QoR to serial, and the miner runs on the table."""
    jobs = campaign_jobs(small_spec, n=8)
    serial = FlowExecutor(n_workers=1, cache=None).run_jobs(jobs)

    server = MetricsServer()
    with MetricsCollector(server, cross_process=True) as collector:
        with FlowExecutor(n_workers=2, cache=None,
                          collector=collector) as executor:
            parallel = executor.run_jobs(jobs)
        collector.flush()

    assert parallel == serial  # bit-identical QoR
    run_ids = server.runs()
    assert len(run_ids) == len(jobs)  # unique ids, no worker collisions
    for job in jobs:
        vec = server.run_vector(make_run_id(job.design, job.options, job.seed))
        assert "flow.area" in vec and "synth.instances" in vec
        for event in EXECUTOR_EVENT_METRICS:
            assert event in vec
    rec = DataMiner(server, seed=0).recommend_options(
        "flow.area", design=small_spec.name
    )
    assert np.isfinite(rec.predicted_objective)


def test_persistence_round_trip_through_collector(small_spec, tmp_path):
    path = tmp_path / "metrics.jsonl"
    server = MetricsServer(persist_path=str(path))
    jobs = campaign_jobs(small_spec, n=3)
    with MetricsCollector(server, cross_process=False) as collector:
        with FlowExecutor(n_workers=1, collector=collector) as executor:
            executor.run_jobs(jobs)
        collector.flush()
    run_ids, names, matrix = server.table()
    server.close()

    reloaded = MetricsServer(persist_path=str(path))
    run_ids2, names2, matrix2 = reloaded.table()
    assert run_ids2 == run_ids
    assert names2 == names
    np.testing.assert_array_equal(matrix2, matrix)
