"""Backend parity: JsonlStore and SqliteStore answer identically.

Property-style suite: seeded random record streams (multiple designs,
campaigns, duplicate metrics, non-finite values) are fed to both
backends, and every query API — ``runs``/``query``/``run_vector``/
``series``/``table``/``run_vectors_matrix``/``campaigns`` — must
answer the same.  The JSONL side is compared in its *reloaded* form
(write + reload), since that is the persisted contract the warehouse
must match: non-finite values normalize away on both paths.

Also covered: torn-line tolerance (JSONL) vs corrupt-row tolerance
(sqlite), and concurrent multi-process writers landing whole records
in both formats.
"""

import json
import math
import multiprocessing
import sqlite3

import numpy as np
import pytest

from repro.metrics import JsonlStore, MetricRecord, SqliteStore
from repro.metrics.store import stamp_campaign

DESIGNS = ("alpha", "beta")
CAMPAIGNS = ("c1", "c2", None)
TOOLS = ("spr_flow", "flow_executor")
METRICS = ("flow.area", "flow.success", "signoff.wns", "place.hpwl",
           "droute.drv_trajectory")


def make_stream(seed, n=120, non_finite=True):
    """A deterministic pseudo-random record stream."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        design = DESIGNS[int(rng.integers(len(DESIGNS)))]
        campaign = CAMPAIGNS[int(rng.integers(len(CAMPAIGNS)))]
        value = float(rng.normal(100.0, 30.0))
        if non_finite and rng.random() < 0.08:
            value = float(rng.choice([math.inf, -math.inf, math.nan]))
        record = MetricRecord(
            design=design,
            run_id=f"{design}-run{int(rng.integers(6))}",
            tool=TOOLS[int(rng.integers(len(TOOLS)))],
            metric=METRICS[int(rng.integers(len(METRICS)))],
            value=value,
            sequence=i,
        )
        if campaign is not None:
            record = stamp_campaign(record, campaign)
        records.append(record)
    return records


@pytest.fixture(params=[0, 1, 2])
def backends(request, tmp_path):
    """(reloaded JsonlStore, SqliteStore) fed the same stream."""
    stream = make_stream(request.param)
    writer = JsonlStore(str(tmp_path / "stream.jsonl"))
    for record in stream:
        writer.receive(record)
    writer.close()
    jsonl = JsonlStore(str(tmp_path / "stream.jsonl"))
    sqlite = SqliteStore(str(tmp_path / "stream.sqlite"))
    sqlite.ingest(stream)
    yield jsonl, sqlite
    jsonl.close()
    sqlite.close()


def as_tuples(records):
    # attributes encode to a canonical string so tuples stay orderable
    return [(r.design, r.run_id, r.tool, r.metric, r.value, r.sequence,
             json.dumps(r.attributes, sort_keys=True)) for r in records]


# ------------------------------------------------------------------ parity
def test_runs_parity(backends):
    jsonl, sqlite = backends
    assert jsonl.runs() == sqlite.runs()
    for design in DESIGNS:
        assert jsonl.runs(design) == sqlite.runs(design)
    for campaign in ("c1", "c2"):
        assert jsonl.runs(campaign=campaign) == sqlite.runs(campaign=campaign)
        for design in DESIGNS:
            assert jsonl.runs(design, campaign=campaign) == \
                sqlite.runs(design, campaign=campaign)


def test_runs_are_sorted_and_repeatable(backends):
    jsonl, sqlite = backends
    for store in backends:
        assert store.runs() == sorted(store.runs())
        assert store.runs() == store.runs()  # deterministic re-query


def test_query_parity(backends):
    jsonl, sqlite = backends
    assert as_tuples(jsonl.query()) == as_tuples(sqlite.query())
    for design in DESIGNS:
        assert as_tuples(jsonl.query(design=design)) == \
            as_tuples(sqlite.query(design=design))
    for metric in METRICS:
        assert as_tuples(jsonl.query(metric=metric)) == \
            as_tuples(sqlite.query(metric=metric))
    for tool in TOOLS:
        assert as_tuples(jsonl.query(tool=tool)) == \
            as_tuples(sqlite.query(tool=tool))
    for campaign in ("c1", "c2"):
        assert as_tuples(jsonl.query(campaign=campaign)) == \
            as_tuples(sqlite.query(campaign=campaign))
    for run_id in jsonl.runs():
        assert as_tuples(jsonl.query(run_id=run_id)) == \
            as_tuples(sqlite.query(run_id=run_id))
    assert jsonl.query(run_id="no-such-run") == []
    assert sqlite.query(run_id="no-such-run") == []


def test_run_vector_and_series_parity(backends):
    jsonl, sqlite = backends
    for run_id in jsonl.runs():
        assert jsonl.run_vector(run_id) == sqlite.run_vector(run_id)
        for metric in METRICS:
            assert jsonl.series(run_id, metric) == sqlite.series(run_id, metric)
    for store in backends:
        with pytest.raises(KeyError):
            store.run_vector("no-such-run")


def test_table_parity(backends):
    jsonl, sqlite = backends
    for design in (None,) + DESIGNS:
        j_runs, j_names, j_matrix = jsonl.table(design)
        s_runs, s_names, s_matrix = sqlite.table(design)
        assert j_runs == s_runs
        assert j_names == s_names
        assert np.array_equal(j_matrix, s_matrix)


def test_run_vectors_matrix_parity(backends):
    jsonl, sqlite = backends
    basis = ["flow.area", "signoff.wns"]
    for design in (None,) + DESIGNS:
        j_runs, j_matrix = jsonl.run_vectors_matrix(basis, design=design)
        s_runs, s_matrix = sqlite.run_vectors_matrix(basis, design=design)
        assert j_runs == s_runs
        assert np.array_equal(j_matrix, s_matrix)
    for store in backends:
        with pytest.raises(ValueError):
            store.run_vectors_matrix([])


def test_campaigns_parity(backends):
    jsonl, sqlite = backends
    assert jsonl.campaigns() == sqlite.campaigns()


def test_non_finite_normalization_counts_match(backends):
    jsonl, sqlite = backends
    assert jsonl.null_values == sqlite.null_values
    assert jsonl.null_values > 0  # the stream does contain non-finite values
    assert len(jsonl) == len(sqlite)


def test_len_parity_excludes_non_finite(backends):
    jsonl, sqlite = backends
    assert len(jsonl) == len(sqlite) <= 120
    assert len(jsonl) + jsonl.null_values == 120


# ------------------------------------------------------------- corruption
def test_jsonl_torn_line_vs_sqlite_corrupt_row(tmp_path):
    stream = make_stream(7, n=40, non_finite=False)
    jsonl_path = tmp_path / "t.jsonl"
    writer = JsonlStore(str(jsonl_path))
    for record in stream:
        writer.receive(record)
    writer.close()
    # tear the file: a partial line a killed writer would leave
    with open(jsonl_path, "a") as fh:
        fh.write('{"design": "alpha", "run_id": "alpha-ru')
    jsonl = JsonlStore(str(jsonl_path))
    assert jsonl.skipped_lines == 1

    sqlite = SqliteStore(str(tmp_path / "t.sqlite"))
    sqlite.ingest(stream)
    # corrupt one row the way a foreign writer could: unparseable
    # attributes JSON
    with sqlite3.connect(str(tmp_path / "t.sqlite")) as conn:
        conn.execute(
            "UPDATE records SET attributes='{torn' "
            "WHERE seq_no = (SELECT MAX(seq_no) FROM records)")
    rows = sqlite.query()
    assert sqlite.skipped_lines == 1
    # the surviving rows still agree with the JSONL reload minus the
    # record whose row was corrupted
    assert as_tuples(jsonl.query())[:-1] == as_tuples(rows)
    jsonl.close()
    sqlite.close()


# ------------------------------------------------------ concurrent writers
def _write_jsonl_worker(path, seed):
    store = JsonlStore(path)
    for record in make_stream(seed, n=30, non_finite=False):
        store.receive(record)
    store.close()


def _write_sqlite_worker(path, seed):
    store = SqliteStore(path)
    store.ingest(make_stream(seed, n=30, non_finite=False))
    store.close()


@pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
def test_concurrent_multiprocess_writers(tmp_path, kind):
    path = str(tmp_path / ("w.jsonl" if kind == "jsonl" else "w.sqlite"))
    worker = _write_jsonl_worker if kind == "jsonl" else _write_sqlite_worker
    if kind == "sqlite":
        SqliteStore(path).close()  # create the schema before the race
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=worker, args=(path, seed))
             for seed in (11, 22, 33)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0
    store = JsonlStore(path) if kind == "jsonl" else SqliteStore(path)
    assert store.skipped_lines == 0  # whole records only, never torn
    assert len(store) == 90
    # order across writers is arbitrary; content must be the union
    expected = sorted(
        as_tuples(make_stream(11, n=30, non_finite=False))
        + as_tuples(make_stream(22, n=30, non_finite=False))
        + as_tuples(make_stream(33, n=30, non_finite=False)))
    assert sorted(as_tuples(store.query())) == expected
    store.close()


def test_concurrent_backends_agree(tmp_path):
    """The same three writer processes produce stores that answer every
    per-run query identically across backends."""
    jsonl_path = str(tmp_path / "w.jsonl")
    sqlite_path = str(tmp_path / "w.sqlite")
    SqliteStore(sqlite_path).close()
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=_write_jsonl_worker, args=(jsonl_path, s))
             for s in (11, 22)]
    procs += [ctx.Process(target=_write_sqlite_worker, args=(sqlite_path, s))
              for s in (11, 22)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0
    jsonl = JsonlStore(jsonl_path)
    sqlite = SqliteStore(sqlite_path)
    assert jsonl.runs() == sqlite.runs()
    for run_id in jsonl.runs():
        assert jsonl.run_vector(run_id) == sqlite.run_vector(run_id)
    jsonl.close()
    sqlite.close()
