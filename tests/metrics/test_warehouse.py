"""The sqlite metrics warehouse: ingest, retention, migration, CLI,
and full-history model training.

The acceptance scenario lives here: two *independent processes* each
run an instrumented flow campaign into one shared sqlite warehouse
under different campaign ids, and the mining/prediction consumers
(:class:`DataMiner`, the doomed-run predictors, the DSE surrogate)
then train over both campaigns from the single archive.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.cli import main
from repro.core.doomed import MDPCardLearner, router_logs_from_store
from repro.core.doomed.card import StrategyCard
from repro.dse.surrogate import SurrogateProposer
from repro.metrics import (
    DataMiner,
    JsonlStore,
    MetricRecord,
    MetricsServer,
    SqliteStore,
    Transmitter,
    migrate_jsonl,
    open_store,
)
from repro.metrics.store import stamp_campaign


def _record(run_id, metric, value, seq, design="d", campaign=None):
    record = MetricRecord(design=design, run_id=run_id, tool="tool",
                         metric=metric, value=value, sequence=seq)
    return record if campaign is None else stamp_campaign(record, campaign)


# ------------------------------------------------------- acceptance fixture
def _campaign_worker(db_path, campaign, seeds):
    """One independent campaign process: instrumented flow runs landing
    straight in the shared sqlite warehouse."""
    from repro.eda.flow import FlowOptions
    from repro.eda.synthesis import DesignSpec
    from repro.metrics import InstrumentedFlow, MetricsServer, SqliteStore

    spec = DesignSpec(name="tiny", n_gates=120, n_flops=16, n_inputs=8,
                      n_outputs=8, depth=10, locality=0.8)
    rng = np.random.default_rng(seeds[0])
    with MetricsServer(store=SqliteStore(db_path), campaign=campaign) as server:
        flow = InstrumentedFlow(server)
        for seed in seeds:
            options = FlowOptions(
                target_clock_ghz=float(rng.uniform(0.6, 1.2)),
                utilization=float(rng.uniform(0.55, 0.9)),
                router_effort=float(rng.uniform(0.3, 1.0)),
                opt_guardband=float(rng.uniform(0, 60)),
            )
            flow.run(spec, options, seed=seed, run_id=f"{campaign}-run{seed}")


@pytest.fixture(scope="module")
def warehouse(tmp_path_factory):
    """One sqlite warehouse filled by two independent campaign
    processes (campaigns c1 and c2, five flow runs each)."""
    db = str(tmp_path_factory.mktemp("wh") / "wh.sqlite")
    SqliteStore(db).close()  # create the schema before the writers race
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_campaign_worker, args=(db, "c1", list(range(5)))),
        ctx.Process(target=_campaign_worker, args=(db, "c2", list(range(5, 10)))),
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0
    return db


# ----------------------------------------------------- acceptance: archive
def test_warehouse_holds_both_campaigns(warehouse):
    with SqliteStore(warehouse) as store:
        assert sorted(store.campaigns()) == ["c1", "c2"]
        assert len(store.runs()) == 10
        for campaign in ("c1", "c2"):
            runs = store.runs(campaign=campaign)
            assert len(runs) == 5
            assert all(r.startswith(campaign + "-") for r in runs)
            for record in store.query(campaign=campaign):
                assert record.attributes["campaign"] == campaign


def test_query_ordering_deterministic_across_handles(warehouse):
    a = SqliteStore(warehouse)
    b = SqliteStore(warehouse)
    assert a.runs() == sorted(a.runs()) == b.runs()
    first = [(r.run_id, r.metric, r.value, r.sequence) for r in a.query()]
    again = [(r.run_id, r.metric, r.value, r.sequence) for r in a.query()]
    other = [(r.run_id, r.metric, r.value, r.sequence) for r in b.query()]
    assert first == again == other
    a.close()
    b.close()


def test_miner_trains_across_campaigns(warehouse):
    """recommend_options needs >= 8 runs: neither 5-run campaign is
    enough alone, but the warehouse union is."""
    with MetricsServer(store=SqliteStore(warehouse)) as server:
        miner = DataMiner(server, seed=0)
        for campaign in ("c1", "c2"):
            with pytest.raises(ValueError):
                miner.recommend_options("flow.area", campaign=campaign)
        rec = miner.recommend_options("flow.area")
        assert rec.options
        assert np.isfinite(rec.predicted_objective)


def test_doomed_predictor_trains_across_campaigns(warehouse):
    with SqliteStore(warehouse) as store:
        logs = router_logs_from_store(store)
        assert len(logs) == 10
        assert all(log.drvs for log in logs)
        assert {log.domain for log in logs} == {"tiny"}
        assert len(router_logs_from_store(store, campaign="c1")) == 5
        assert len(router_logs_from_store(store, campaign="c2")) == 5
        card = MDPCardLearner().fit_from_store(store)
        assert isinstance(card, StrategyCard)
        assert card.visited.any()


def test_surrogate_trains_across_campaigns(warehouse):
    with SqliteStore(warehouse) as store:
        lone = SurrogateProposer(min_fit=8)
        assert lone.fit_from_store(store, campaign="c1") is False
        proposer = SurrogateProposer(min_fit=8)
        assert proposer.fit_from_store(store) is True
        assert proposer.ready
        assert proposer.fit_score is not None


# ------------------------------------------------------- sqlite specifics
def test_since_filter_anchors_on_ingest_order(tmp_path):
    with SqliteStore(str(tmp_path / "s.sqlite")) as store:
        store.ingest([_record("r1", "flow.area", 1.0, 0, campaign="c1"),
                      _record("r1", "flow.success", 1.0, 1, campaign="c1")])
        mark = store.ingest_count
        store.ingest([_record("r2", "flow.area", 2.0, 0, campaign="c2")])
        assert store.runs(since=mark) == ["r2"]
        assert store.runs(since=0) == ["r1", "r2"]
        assert [r.run_id for r in store.query(since=mark)] == ["r2"]


def test_batched_jsonl_ingest(tmp_path):
    jsonl = str(tmp_path / "in.jsonl")
    with JsonlStore(jsonl) as writer:
        for i in range(25):
            writer.receive(_record(f"r{i % 5}", "flow.area", float(i), i))
    with SqliteStore(str(tmp_path / "s.sqlite")) as store:
        report = store.receive_jsonl(jsonl, campaign="cX", batch_size=10)
        assert report.records == 25
        assert report.batches == 3
        assert store.runs(campaign="cX") == [f"r{i}" for i in range(5)]


def test_migration_zero_loss(tmp_path):
    """count + per-run-vector equality, with non-finite values and a
    torn tail line in the source."""
    jsonl = str(tmp_path / "legacy.jsonl")
    with JsonlStore(jsonl) as writer:
        rng = np.random.default_rng(5)
        for i in range(60):
            value = float(rng.normal()) if i % 9 else float("nan")
            writer.receive(_record(f"r{i % 7}", "flow.area", value, i))
            writer.receive(_record(f"r{i % 7}", "signoff.wns", -float(i), 60 + i))
    with open(jsonl, "a") as fh:
        fh.write('{"design": "d", "run_id"')  # a killed writer's torn line
    source = JsonlStore(jsonl)
    with SqliteStore(str(tmp_path / "wh.sqlite")) as store:
        report = migrate_jsonl(jsonl, store, campaign="legacy")
        assert report.records == len(source)
        assert report.skipped_lines == 1
        assert report.null_values == source.null_values
        assert store.runs() == source.runs()
        for run_id in source.runs():
            assert store.run_vector(run_id) == source.run_vector(run_id)
        assert store.runs(campaign="legacy") == source.runs()
    source.close()


def test_compact_keeps_last_campaigns(tmp_path):
    with SqliteStore(str(tmp_path / "s.sqlite")) as store:
        seq = 0
        for campaign in ("old", "mid", "new"):
            for i in range(4):
                store.ingest([_record(f"{campaign}-r{i}", "flow.area",
                                      float(i), seq, campaign=campaign)])
                seq += 1
        store.ingest([_record("untagged-r", "flow.area", 9.0, seq)])
        removed = store.compact(keep_last_n_campaigns=2)
        assert removed == 4
        assert store.campaigns() == ["mid", "new"]
        assert store.runs(campaign="old") == []
        with pytest.raises(KeyError):
            store.run_vector("old-r0")
        # untagged records are never retention targets
        assert store.run_vector("untagged-r") == {"flow.area": 9.0}
        assert len(store.runs()) == 9


def test_open_store_sniffs_format(tmp_path):
    sqlite_path = str(tmp_path / "a.sqlite")
    SqliteStore(sqlite_path).close()
    store = open_store(sqlite_path)
    assert isinstance(store, SqliteStore)
    store.close()
    jsonl_path = str(tmp_path / "a.jsonl")
    with JsonlStore(jsonl_path) as writer:
        writer.receive(_record("r", "flow.area", 1.0, 0))
    store = open_store(jsonl_path)
    assert isinstance(store, JsonlStore)
    assert len(store) == 1
    store.close()
    fresh = open_store(str(tmp_path / "new.db"))
    assert isinstance(fresh, SqliteStore)
    fresh.close()


# --------------------------------------------------------- lifecycle/API
def test_stores_and_server_are_context_managers(tmp_path):
    with JsonlStore(str(tmp_path / "a.jsonl")) as store:
        store.receive(_record("r", "flow.area", 1.0, 0))
    with SqliteStore(str(tmp_path / "a.sqlite")) as store:
        store.receive(_record("r", "flow.area", 1.0, 0))
    with MetricsServer(store=SqliteStore(str(tmp_path / "a.sqlite"))) as server:
        assert server.runs() == ["r"]
    server.close()  # idempotent


def test_server_rejects_store_and_path_together(tmp_path):
    with pytest.raises(ValueError):
        MetricsServer(persist_path=str(tmp_path / "a.jsonl"),
                      store=SqliteStore(str(tmp_path / "a.sqlite")))


def test_server_campaign_stamps_records(tmp_path):
    with MetricsServer(store=SqliteStore(str(tmp_path / "a.sqlite")),
                       campaign="c9") as server:
        server.receive(_record("r", "flow.area", 1.0, 0))
        already = _record("r", "flow.success", 1.0, 1, campaign="keep")
        server.receive(already)
        assert server.runs(campaign="c9") == ["r"]
        tagged = {r.metric: r.attributes["campaign"] for r in server.query()}
        assert tagged == {"flow.area": "c9", "flow.success": "keep"}


# ------------------------------------------------------------------- CLI
def _write_campaign_jsonl(path, n_runs, prefix="", offset=0.0):
    with JsonlStore(str(path)) as writer:
        for i in range(n_runs):
            run_id = f"{prefix}r{i}"
            writer.receive(_record(run_id, "flow.area", 100.0 + offset + i, 2 * i))
            writer.receive(_record(run_id, "flow.success", 1.0, 2 * i + 1))


def test_cli_ingest_summary_query_compact(tmp_path, capsys):
    db = str(tmp_path / "wh.sqlite")
    _write_campaign_jsonl(tmp_path / "a.jsonl", 3, prefix="a-")
    _write_campaign_jsonl(tmp_path / "b.jsonl", 2, prefix="b-", offset=50.0)
    assert main(["metrics", "ingest", "--db", db,
                 "--in", str(tmp_path / "a.jsonl"), "--campaign", "c1"]) == 0
    assert main(["metrics", "ingest", "--db", db,
                 "--in", str(tmp_path / "b.jsonl"), "--campaign", "c2"]) == 0
    capsys.readouterr()

    assert main(["metrics", "summary", "--in", db]) == 0
    out = capsys.readouterr().out
    assert "campaigns: c1, c2" in out
    assert "flow.area" in out

    assert main(["metrics", "summary", "--in", db, "--campaign", "c2"]) == 0
    out = capsys.readouterr().out
    assert "over 2 runs" in out

    assert main(["metrics", "query", "--in", db, "--campaign", "c1"]) == 0
    out = capsys.readouterr().out
    assert out.count("\n") == 3  # run-list mode: one line per run
    assert main(["metrics", "query", "--in", db, "--campaign", "c1",
                 "--metric", "flow.area"]) == 0
    out = capsys.readouterr().out
    assert "flow.area=" in out
    assert main(["metrics", "query", "--in", db,
                 "--campaign", "nope"]) == 1

    assert main(["metrics", "compact", "--db", db, "--keep-last", "1"]) == 0
    capsys.readouterr()
    with SqliteStore(db) as store:
        assert store.campaigns() == ["c2"]
        assert store.runs(campaign="c1") == []
        # maintenance ops are recorded in the warehouse itself
        assert any(r.startswith("warehouse-op-") for r in store.runs())


def test_cli_migrate_verifies_zero_loss(tmp_path, capsys):
    jsonl = tmp_path / "legacy.jsonl"
    _write_campaign_jsonl(jsonl, 4)
    db = str(tmp_path / "wh.sqlite")
    assert main(["metrics", "migrate", "--in", str(jsonl), "--db", db]) == 0
    out = capsys.readouterr().out
    assert "verified: 4 run vectors identical" in out
    source = JsonlStore(str(jsonl))
    with SqliteStore(db) as store:
        assert [r for r in store.runs() if not r.startswith("warehouse-op-")] \
            == source.runs()
        for run_id in source.runs():
            assert store.run_vector(run_id) == source.run_vector(run_id)
    source.close()


def test_cli_rejects_both_metrics_sinks(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["mab", "--metrics-out", str(tmp_path / "a.jsonl"),
              "--metrics-db", str(tmp_path / "a.sqlite")])
    assert exc.value.code == 2


def test_cli_summary_reads_both_formats(tmp_path, capsys):
    jsonl = tmp_path / "a.jsonl"
    _write_campaign_jsonl(jsonl, 2)
    assert main(["metrics", "summary", "--in", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "over 2 runs" in out
    db = str(tmp_path / "a.sqlite")
    with SqliteStore(db) as store:
        report = store.receive_jsonl(str(jsonl))
        assert report.records == 4
    assert main(["metrics", "summary", "--in", db]) == 0
    out = capsys.readouterr().out
    assert "over 2 runs" in out
