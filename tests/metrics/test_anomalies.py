"""Anomaly flagging in the METRICS miner."""

import numpy as np
import pytest

from repro.eda.flow import FlowOptions
from repro.metrics import DataMiner, InstrumentedFlow, MetricsServer, Transmitter


@pytest.fixture(scope="module")
def server_with_runs(small_spec):
    server = MetricsServer()
    flow = InstrumentedFlow(server)
    rng = np.random.default_rng(0)
    for i in range(10):
        options = FlowOptions(
            target_clock_ghz=float(rng.uniform(0.6, 1.0)),
            utilization=float(rng.uniform(0.6, 0.8)),
        )
        flow.run(small_spec, options, seed=i)
    return server


def test_clean_runs_mostly_unflagged(server_with_runs):
    miner = DataMiner(server_with_runs, seed=0)
    flagged = miner.flag_anomalies("flow.area", z_threshold=3.0)
    assert len(flagged) <= 2  # normal seed noise stays under 3 sigma


def test_corrupted_run_is_flagged(server_with_runs, small_spec):
    # inject a run whose reported area is absurd for its options
    with Transmitter(server_with_runs, small_spec.name, "corrupt-run", "spr_flow") as tx:
        tx.send("flow.area", 50_000.0)
        tx.send("flow.target_ghz", 0.8)
        tx.send("option.synth_effort", 0.5)
        tx.send("option.utilization", 0.7)
        tx.send("option.cts_effort", 0.5)
        tx.send("option.router_effort", 0.6)
        tx.send("option.opt_guardband", 0.0)
        tx.send("flow.success", 1.0)
        # pad the remaining common metrics so the table stays dense
        for name, value in (
            ("flow.achieved_ghz", 0.8), ("flow.runtime", 1.0),
            ("signoff.wns", 0.0), ("signoff.tns", 0.0), ("signoff.power", 1.0),
            ("signoff.ir_drop", 0.0), ("droute.final_drvs", 0.0),
            ("droute.iterations", 1.0), ("groute.overflow", 0.0),
            ("groute.max_congestion", 0.5), ("groute.wirelength", 1.0),
            ("place.hpwl", 1.0), ("place.density_max", 0.5),
            ("cts.skew", 1.0), ("cts.buffers", 1.0),
            ("synth.instances", 100.0), ("synth.depth", 10.0),
            ("synth.area", 50.0), ("floorplan.width", 10.0),
            ("floorplan.height", 10.0), ("floorplan.utilization", 0.7),
            ("opt.wns_graph", 0.0), ("opt.sizing_ops", 0.0),
        ):
            tx.send(name, value)
    miner = DataMiner(server_with_runs, seed=0)
    flagged = miner.flag_anomalies("flow.area", z_threshold=2.5)
    assert "corrupt-run" in flagged
    assert abs(flagged["corrupt-run"]) > 2.5


def test_anomaly_validation(server_with_runs):
    miner = DataMiner(server_with_runs, seed=0)
    with pytest.raises(ValueError):
        miner.flag_anomalies(z_threshold=0.0)
    empty = MetricsServer()
    with pytest.raises(ValueError):
        DataMiner(empty).flag_anomalies()
