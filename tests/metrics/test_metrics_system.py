"""METRICS 2.0: schema, transmission, server, miner, feedback."""

import numpy as np
import pytest

from repro.eda.flow import FlowOptions
from repro.metrics import (
    AdaptiveFlowSession,
    DataMiner,
    InstrumentedFlow,
    MetricRecord,
    MetricsServer,
    Transmitter,
    VOCABULARY,
    validate_metric_name,
)
from repro.metrics.wrappers import coverage


# ------------------------------------------------------------------ schema
def test_vocabulary_is_nonempty_and_documented():
    assert len(VOCABULARY) > 20
    for name, (unit, description) in VOCABULARY.items():
        assert unit and description
        validate_metric_name(name)


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        validate_metric_name("bogus.metric")
    with pytest.raises(ValueError):
        validate_metric_name("no_dot")
    with pytest.raises(ValueError):
        MetricRecord("d", "r", "t", "bogus.metric", 1.0)


def test_record_xml_roundtrip():
    record = MetricRecord(
        design="pulpino", run_id="r1", tool="spr_flow",
        metric="flow.area", value=123.456, sequence=7,
        attributes={"corner": "tt"},
    )
    xml = record.to_xml()
    assert xml.startswith("<metric")
    back = MetricRecord.from_xml(xml)
    assert back == record


def test_bad_xml_rejected():
    with pytest.raises(ValueError):
        MetricRecord.from_xml("<notmetric/>")


# ------------------------------------------------------- transmitter/server
def test_transmitter_buffers_and_flushes():
    server = MetricsServer()
    tx = Transmitter(server, "d", "r1", "tool", buffer_size=100)
    tx.send("flow.area", 10.0)
    assert len(server) == 0  # still buffered
    tx.flush()
    assert len(server) == 1


def test_transmitter_autoflush_at_buffer_size():
    server = MetricsServer()
    tx = Transmitter(server, "d", "r1", "tool", buffer_size=2)
    tx.send("flow.area", 1.0)
    tx.send("flow.power" if "flow.power" in VOCABULARY else "flow.runtime", 2.0)
    assert len(server) == 2


def test_transmitter_context_manager():
    server = MetricsServer()
    with Transmitter(server, "d", "r2", "tool") as tx:
        tx.send_many({"flow.area": 1.0, "flow.runtime": 2.0})
    assert len(server) == 2


def test_transmitter_validates_at_send():
    server = MetricsServer()
    tx = Transmitter(server, "d", "r1", "tool")
    with pytest.raises(ValueError):
        tx.send("garbage.name", 1.0)


class _FlakyServer:
    """Accepts records until the nth delivery, then drops the link once."""

    def __init__(self, fail_on):
        self.records = []
        self.fail_on = fail_on
        self.deliveries = 0

    def receive_xml(self, xml):
        self.deliveries += 1
        if self.deliveries == self.fail_on:
            raise ConnectionError("link dropped")
        self.records.append(MetricRecord.from_xml(xml))


def test_flush_is_at_most_once_on_mid_flush_failure():
    server = _FlakyServer(fail_on=2)
    tx = Transmitter(server, "d", "r1", "tool", buffer_size=100)
    tx.send("flow.area", 1.0)
    tx.send("flow.runtime", 2.0)
    tx.send("flow.success", 3.0)
    with pytest.raises(ConnectionError):
        tx.flush()
    # the first record arrived exactly once; the failed one is gone
    # (at-most-once), and only the untouched tail remains buffered
    assert [r.metric for r in server.records] == ["flow.area"]
    assert [r.metric for r in tx._buffer] == ["flow.success"]
    tx.flush()
    assert [r.metric for r in server.records] == ["flow.area", "flow.success"]


def test_server_queries():
    server = MetricsServer()
    with Transmitter(server, "da", "r1", "tool") as tx:
        tx.send("flow.area", 1.0)
    with Transmitter(server, "db", "r2", "tool") as tx:
        tx.send("flow.area", 2.0)
    assert server.runs() == ["r1", "r2"]
    assert server.runs(design="da") == ["r1"]
    assert len(server.query(metric="flow.area")) == 2
    assert server.query(design="db")[0].value == 2.0
    assert server.run_vector("r1") == {"flow.area": 1.0}
    with pytest.raises(KeyError):
        server.run_vector("nope")


def test_query_unknown_run_returns_empty():
    server = MetricsServer()
    with Transmitter(server, "d", "r1", "tool") as tx:
        tx.send("flow.area", 1.0)
    assert server.query(run_id="nope") == []  # not everything!
    assert server.query(run_id="nope", metric="flow.area") == []
    assert len(server.query(run_id="r1")) == 1


def test_runs_ordering_consistent_across_paths(tmp_path):
    """runs() is sorted no matter the arrival order, and a reloaded
    server agrees with the in-memory one."""
    path = tmp_path / "metrics.jsonl"
    server = MetricsServer(persist_path=str(path))
    for run_id in ("r3", "r1", "r2"):  # out-of-order arrival
        with Transmitter(server, "d", run_id, "tool") as tx:
            tx.send("flow.area", 1.0)
    assert server.runs() == ["r1", "r2", "r3"]
    reloaded = MetricsServer(persist_path=str(path))
    assert reloaded.runs() == server.runs()


def test_server_load_skips_torn_lines(tmp_path):
    path = tmp_path / "metrics.jsonl"
    server = MetricsServer(persist_path=str(path))
    with Transmitter(server, "d", "r1", "tool") as tx:
        tx.send("flow.area", 1.0)
    server.close()
    with open(path, "a") as fh:
        fh.write('{"design": "d", "ru')  # torn concurrent write
    reloaded = MetricsServer(persist_path=str(path))
    assert len(reloaded) == 1
    assert reloaded.skipped_lines == 1


def test_server_persists_nonfinite_as_strict_json_null(tmp_path):
    """inf/nan never reach the JSONL file as python-only tokens.

    ``json.dumps`` would happily emit ``Infinity`` — which no strict
    JSON reader accepts — so non-finite measurements persist as null
    and are ignored (counted) on reload.
    """
    import json
    import math

    path = tmp_path / "metrics.jsonl"
    server = MetricsServer(persist_path=str(path))
    with Transmitter(server, "d", "r1", "tool") as tx:
        tx.send("flow.area", 42.0)
        tx.send("signoff.wns", float("inf"))
        tx.send("signoff.tns", float("-inf"))
        tx.send("signoff.power", float("nan"))
    server.close()
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    assert len(lines) == 4
    for line in lines:
        data = json.loads(line, parse_constant=lambda tok: pytest.fail(
            f"non-strict JSON token {tok!r} persisted"))
        assert data["value"] is None or math.isfinite(data["value"])
    reloaded = MetricsServer(persist_path=str(path))
    assert len(reloaded) == 1  # only the finite record survives
    assert reloaded.null_values == 3
    assert reloaded.run_vector("r1") == {"flow.area": 42.0}


def test_report_flow_metrics_drops_nonfinite(small_spec):
    """Sentinel timing values (inf hold_wns etc.) are never transmitted."""
    from repro.eda.flow import SPRFlow
    from repro.metrics.wrappers import make_run_id, report_flow_metrics

    result = SPRFlow().run(small_spec, FlowOptions(), seed=1)
    # poison the signoff log with the sentinels TimingReport uses for
    # "nothing to report" and make sure they stay out of the stream
    signoff = [log for log in result.logs if log.step == "signoff"][0]
    signoff.metrics["wns"] = float("inf")
    signoff.metrics["tns"] = float("nan")
    server = MetricsServer()
    with Transmitter(server, result.design,
                     make_run_id(small_spec, FlowOptions(), 1),
                     tool="spr_flow") as tx:
        report_flow_metrics(tx, result)
    vec = server.run_vector(server.runs()[0])
    assert "signoff.wns" not in vec
    assert "signoff.tns" not in vec
    assert "signoff.power" in vec  # finite neighbors still reported
    assert all(np.isfinite(v) for v in vec.values())


def test_server_last_report_wins():
    server = MetricsServer()
    with Transmitter(server, "d", "r1", "tool") as tx:
        tx.send("flow.area", 1.0)
        tx.send("flow.area", 5.0)
    assert server.run_vector("r1")["flow.area"] == 5.0


def test_server_persistence(tmp_path):
    path = tmp_path / "metrics.jsonl"
    server = MetricsServer(persist_path=str(path))
    with Transmitter(server, "d", "r1", "tool") as tx:
        tx.send("flow.area", 42.0)
    reloaded = MetricsServer(persist_path=str(path))
    assert len(reloaded) == 1
    assert reloaded.run_vector("r1")["flow.area"] == 42.0


def test_server_table_dense(small_spec):
    server = MetricsServer()
    flow = InstrumentedFlow(server)
    for seed in range(3):
        flow.run(small_spec, FlowOptions(), seed=seed)
    run_ids, names, matrix = server.table()
    assert matrix.shape == (3, len(names))
    assert np.isfinite(matrix).all()


# ------------------------------------------------------- instrumented flow
def test_instrumented_flow_reports_everything(small_spec):
    server = MetricsServer()
    result = InstrumentedFlow(server).run(small_spec, FlowOptions(), seed=1)
    assert result.area > 0
    vec = server.run_vector(server.runs()[0])
    for key in ("flow.area", "signoff.wns", "droute.final_drvs",
                "option.utilization", "flow.target_ghz"):
        assert key in vec
    assert vec["flow.area"] == pytest.approx(result.area)


def test_vocabulary_fully_covered_by_flow():
    assert coverage() == 1.0


# ------------------------------------------------------------------- miner
@pytest.fixture(scope="module")
def mined_server(small_spec):
    server = MetricsServer()
    flow = InstrumentedFlow(server)
    rng = np.random.default_rng(3)
    for i in range(10):
        options = FlowOptions(
            target_clock_ghz=float(rng.uniform(0.6, 1.2)),
            utilization=float(rng.uniform(0.55, 0.9)),
            opt_guardband=float(rng.uniform(0, 60)),
        )
        flow.run(small_spec, options, seed=i)
    return server


def test_miner_sensitivity(mined_server):
    sens = DataMiner(mined_server, seed=0).sensitivity("flow.area")
    assert sens
    assert all(0.0 <= v <= 1.0 for v in sens.values())
    # utilization changes the die, so it must register as sensitive for
    # *something*; at minimum the ordering is well-defined
    assert list(sens.values()) == sorted(sens.values(), reverse=True)


def test_miner_recommends_options(mined_server):
    rec = DataMiner(mined_server, seed=0).recommend_options("flow.area")
    assert rec.options
    assert np.isfinite(rec.predicted_objective)
    assert -1.0 <= rec.model_r2 <= 1.0


def test_miner_prescribes_frequency(mined_server, small_netlist):
    stats = small_netlist.stats()
    features = {
        "synth.instances": stats["instances"],
        "synth.depth": stats["depth"],
        "synth.area": stats["area"],
    }
    ghz = DataMiner(mined_server, seed=0).prescribe_frequency(features)
    assert 0.05 < ghz < 10.0
    conservative = DataMiner(mined_server, seed=0).prescribe_frequency(features, quantile=0.1)
    aggressive = DataMiner(mined_server, seed=0).prescribe_frequency(features, quantile=0.9)
    assert conservative <= aggressive


def test_miner_needs_enough_runs(small_spec):
    server = MetricsServer()
    InstrumentedFlow(server).run(small_spec, FlowOptions(), seed=0)
    with pytest.raises(ValueError):
        DataMiner(server).recommend_options()


# ---------------------------------------------------------------- feedback
def test_adaptive_session_improves_or_matches(small_spec):
    session = AdaptiveFlowSession(spec=small_spec, objective="flow.area", seed=4)
    best = session.run_campaign(n_seed=8, n_adaptive=3,
                                base_options=FlowOptions(target_clock_ghz=0.8))
    assert best.area > 0
    assert len(session.history) == 11
    assert session.n_seed_runs == 8
    ratio = session.improvement()
    assert ratio <= 1.1  # the loop must not make things materially worse


def test_adaptive_session_ranks_by_configured_objective(small_spec):
    """best_result must honor the objective, not hardcode area."""
    session = AdaptiveFlowSession(spec=small_spec, objective="signoff.power",
                                  seed=4)
    best = session.run_campaign(n_seed=8, n_adaptive=2,
                                base_options=FlowOptions(target_clock_ghz=0.8))
    successes = [r for r in session.history if r.success]
    assert best.power == min(r.power for r in successes)
    assert session.improvement() <= 1.1


def test_adaptive_session_executor_matches_serial(small_spec):
    """An executor-backed campaign (collector, 2 workers) reproduces the
    serial campaign bit-identically and lands worker metrics centrally."""
    from repro.core.parallel import FlowExecutor
    from repro.metrics import MetricsCollector

    base = FlowOptions(target_clock_ghz=0.8)
    serial = AdaptiveFlowSession(spec=small_spec, objective="flow.area", seed=4)
    serial_best = serial.run_campaign(n_seed=8, n_adaptive=2, base_options=base)

    server = MetricsServer()
    with MetricsCollector(server, cross_process=True) as collector:
        with FlowExecutor(n_workers=2, cache=None,
                          collector=collector) as executor:
            session = AdaptiveFlowSession(spec=small_spec,
                                          objective="flow.area", seed=4,
                                          server=server)
            best = session.run_campaign(n_seed=8, n_adaptive=2,
                                        base_options=base, executor=executor)
    assert session.history == serial.history
    assert best == serial_best
    assert not session.failures
    assert set(session.run_ids) <= set(server.runs())
    # every campaign run has worker-side step metrics on the server
    for run_id in session.run_ids:
        assert "flow.area" in server.run_vector(run_id)


def test_adaptive_session_rejects_foreign_collector(small_spec):
    from repro.core.parallel import FlowExecutor
    from repro.metrics import MetricsCollector

    with MetricsCollector(MetricsServer(), cross_process=False) as collector:
        with FlowExecutor(n_workers=1, collector=collector) as executor:
            session = AdaptiveFlowSession(spec=small_spec)  # its own server
            with pytest.raises(ValueError):
                session.run_campaign(n_seed=8, executor=executor)


def test_adaptive_session_validation(small_spec):
    session = AdaptiveFlowSession(spec=small_spec)
    with pytest.raises(ValueError):
        session.run_campaign(n_seed=4)
    with pytest.raises(RuntimeError):
        AdaptiveFlowSession(spec=small_spec).best_result()
